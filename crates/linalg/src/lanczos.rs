//! Matrix-free symmetric Lanczos with ω-monitored selective
//! reorthogonalization, deflated restarts, and the unified
//! partial-eigendecomposition entry point [`sym_eigs`].
//!
//! The partitioning stack needs the `k` *smallest* eigenpairs of the α-Cut
//! matrix and of the normalized Laplacian. Both are extremal, which is
//! exactly what Lanczos converges first. Two numerical hazards matter here:
//!
//! * **loss of orthogonality** — monitored with Simon's ω-recurrence: a
//!   cheap running estimate of the worst inner product between the new
//!   Lanczos vector and the existing basis. While the estimate stays below
//!   `√ε` the basis is *semiorthogonal* (Ritz values remain accurate to
//!   `O(ε‖A‖)`) and no reorthogonalization is spent; when it crosses the
//!   threshold, a full two-pass reorthogonalization restores orthogonality
//!   and the recurrence resets. [`ReorthPolicy::Full`] switches back to the
//!   historical unconditional two-pass reorthogonalization bit-for-bit (it
//!   is the fallback ladder's choice, see [`crate::fallback`]);
//! * **degenerate eigenvalues** — a single Krylov sequence can never produce
//!   two eigenvectors of the same eigenvalue (disconnected supergraphs have
//!   multi-dimensional Laplacian kernels!), so converged Ritz pairs are
//!   *locked* and the iteration restarts deflated against them until the
//!   requested count is reached. The locked set is orthogonalized against
//!   every iteration regardless of policy — deflation is a correctness
//!   constraint, not a performance knob.
//!
//! All scratch buffers come from a [`Workspace`] pool, so a warm solve (the
//! steady state of online repartitioning) runs the restart loop
//! allocation-free; [`sym_eigs`] wraps [`sym_eigs_ws`] with a throwaway
//! pool for one-shot callers.

use crate::dense::DenseMatrix;
use crate::eigen_dense::eigh;
use crate::error::{LinalgError, Result};
use crate::operator::SymOp;
use crate::par::ThreadPool;
use crate::tridiag::tql2;
use crate::vecops;
use crate::workspace::Workspace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which end of the spectrum to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// The algebraically smallest eigenvalues.
    Smallest,
    /// The algebraically largest eigenvalues.
    Largest,
}

/// How aggressively the Lanczos basis is reorthogonalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorthPolicy {
    /// Unconditional two-pass reorthogonalization against the locked set
    /// and the whole basis, every iteration. Bit-identical to the
    /// historical solver; kept for the fallback ladder.
    Full,
    /// ω-recurrence-monitored selective reorthogonalization: orthogonalize
    /// against the (small) locked set every iteration, but sweep the full
    /// basis only when the orthogonality estimate crosses `√ε`.
    #[default]
    Selective,
}

/// Configuration for [`sym_eigs`].
#[derive(Debug, Clone)]
pub struct EigenConfig {
    /// Below this dimension the operator is densified (one apply per unit
    /// vector) and solved exactly with [`eigh`]. Default: 512.
    pub dense_cutoff: usize,
    /// Hard cap on the Krylov subspace dimension per restart. Default: 400.
    pub max_subspace: usize,
    /// Maximum number of deflated restarts. Default: 24.
    pub max_restarts: usize,
    /// Relative residual tolerance for Ritz-pair convergence. Default: 1e-8.
    pub tol: f64,
    /// Seed for the random starting vectors.
    pub seed: u64,
    /// Reorthogonalization policy. Default: [`ReorthPolicy::Selective`];
    /// the fallback ladder pins its relaxed rungs to [`ReorthPolicy::Full`].
    pub reorth: ReorthPolicy,
    /// Optional warm-start subspace: an `n x m` matrix whose columns are
    /// approximate eigenvectors from a previous, nearby solve (e.g. the last
    /// repartitioning epoch). Each restart seeds its Krylov sequence with the
    /// combination of the still-unconverged columns instead of a random
    /// vector. The hint is orthonormalized defensively against the locked
    /// set and silently ignored when its dimensions disagree with the
    /// operator or its entries are non-finite, so a stale hint can never
    /// corrupt a solve — at worst it degrades to the cold start.
    pub start: Option<DenseMatrix>,
    /// Thread pool for the operator applications. Results are bit-identical
    /// at every pool size (see [`crate::par`]), so this is purely a
    /// performance knob. Default: [`ThreadPool::from_env`]
    /// (`ROADPART_THREADS`, serial fallback).
    pub pool: ThreadPool,
    /// Sparse-operator memory layout for the spectral hot path (see
    /// [`crate::layout`]). `RowMajor` and `Blocked` are purely performance
    /// knobs producing bit-identical products; the bench-only
    /// `LegacyScalar` variant instead re-runs the solver-internal
    /// reductions in the historical sequential order. Default:
    /// [`crate::layout::KernelLayout::RowMajor`].
    pub layout: crate::layout::KernelLayout,
}

impl Default for EigenConfig {
    fn default() -> Self {
        Self {
            dense_cutoff: 512,
            max_subspace: 400,
            max_restarts: 24,
            tol: 1e-8,
            seed: 0x5eed_1a27,
            reorth: ReorthPolicy::default(),
            start: None,
            pool: ThreadPool::from_env(),
            layout: crate::layout::KernelLayout::default(),
        }
    }
}

/// A partial symmetric eigendecomposition: `nev` eigenpairs.
#[derive(Debug, Clone)]
pub struct PartialEigen {
    /// Selected eigenvalues, always sorted ascending.
    pub values: Vec<f64>,
    /// `n x nev` matrix whose column `j` is the eigenvector of `values[j]`.
    pub vectors: DenseMatrix,
    /// Total Lanczos iterations (operator applications) spent across all
    /// restarts; `0` for dense solves. Warm starts show up here as a lower
    /// count for the same spectrum.
    pub iterations: usize,
}

impl PartialEigen {
    /// Copies eigenvector `j`.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }
}

/// Computes `nev` extremal eigenpairs of a symmetric operator.
///
/// Small operators (`dim <= cfg.dense_cutoff`) are densified and solved
/// exactly; larger ones go through deflated-restart Lanczos. Equivalent to
/// [`sym_eigs_ws`] with a throwaway workspace.
///
/// # Errors
/// Returns [`LinalgError::InvalidInput`] if `nev > op.dim()`, and
/// [`LinalgError::NotConverged`] if Lanczos exhausts its restart budget
/// without locking `nev` pairs at the requested tolerance.
pub fn sym_eigs(
    op: &impl SymOp,
    nev: usize,
    which: Which,
    cfg: &EigenConfig,
) -> Result<PartialEigen> {
    let mut ws = Workspace::new();
    sym_eigs_ws(op, nev, which, cfg, &mut ws)
}

/// [`sym_eigs`] drawing every scratch buffer from `ws`.
///
/// Repeated solves against operators of similar dimension (the online
/// repartitioning loop) reuse the pooled buffers and run the Lanczos
/// iteration allocation-free after the first call.
///
/// # Errors
/// Same contract as [`sym_eigs`].
pub fn sym_eigs_ws(
    op: &impl SymOp,
    nev: usize,
    which: Which,
    cfg: &EigenConfig,
    ws: &mut Workspace,
) -> Result<PartialEigen> {
    let n = op.dim();
    if nev > n {
        return Err(LinalgError::InvalidInput(format!(
            "requested {nev} eigenpairs of a dimension-{n} operator"
        )));
    }
    if nev == 0 {
        return Ok(PartialEigen {
            values: vec![],
            vectors: DenseMatrix::zeros(n, 0),
            iterations: 0,
        });
    }
    if n <= cfg.dense_cutoff {
        let dense = densify_with(op, &cfg.pool);
        let dec = eigh(&dense)?;
        let idx: Vec<usize> = match which {
            Which::Smallest => (0..nev).collect(),
            Which::Largest => (n - nev..n).collect(),
        };
        let values: Vec<f64> = idx.iter().map(|&i| dec.values[i]).collect();
        let vectors = DenseMatrix::from_fn(n, nev, |r, c| dec.vectors.get(r, idx[c]));
        return Ok(PartialEigen {
            values,
            vectors,
            iterations: 0,
        });
    }
    lanczos_deflated(op, nev, which, cfg, ws)
}

/// Materializes a matrix-free operator by applying it to every unit vector.
/// The result is symmetrized to wash out round-off asymmetry.
pub fn densify(op: &impl SymOp) -> DenseMatrix {
    densify_with(op, &ThreadPool::serial())
}

/// [`densify`] with the operator applications distributed over `pool`.
pub fn densify_with(op: &impl SymOp, pool: &ThreadPool) -> DenseMatrix {
    let n = op.dim();
    let mut a = DenseMatrix::zeros(n, n);
    let mut e = vec![0.0; n];
    let mut col = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        op.apply_par(pool, &e, &mut col);
        for (i, &c) in col.iter().enumerate() {
            a.set(i, j, c);
        }
        e[j] = 0.0;
    }
    // Symmetrize in place: A <- (A + A^T) / 2.
    for i in 0..n {
        for j in (i + 1)..n {
            let v = 0.5 * (a.get(i, j) + a.get(j, i));
            a.set(i, j, v);
            a.set(j, i, v);
        }
    }
    a
}

/// Outer driver: restart Lanczos in the orthogonal complement of the locked
/// eigenvectors until `nev` pairs are locked.
fn lanczos_deflated(
    op: &impl SymOp,
    nev: usize,
    which: Which,
    cfg: &EigenConfig,
    ws: &mut Workspace,
) -> Result<PartialEigen> {
    let n = op.dim();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut locked_vals: Vec<f64> = Vec::with_capacity(nev);
    let mut locked_vecs: Vec<Vec<f64>> = Vec::with_capacity(nev);
    let mut total_iters = 0usize;

    for _restart in 0..cfg.max_restarts {
        if locked_vals.len() >= nev {
            // Verification pass: a single Krylov sequence converges only one
            // copy of each degenerate eigenvalue, so the locked set may hold
            // one eigenpair per *distinct* value and miss a multiplicity that
            // belongs in the wanted set. Probe the deflated complement: if
            // its extremal eigenvalue beats the current k-th selected value,
            // a copy was missed — lock it and probe again.
            if locked_vecs.len() >= n {
                break;
            }
            let probe = lanczos_run(op, 1, which, cfg, &locked_vecs, &mut rng, None, ws)?;
            total_iters += probe.iterations;
            let first_val = probe.values.first().copied();
            let mut vec_iter = probe.vectors.into_iter();
            let first_vec = vec_iter.next();
            for v in vec_iter {
                ws.put(v);
            }
            let Some((new_val, new_vec)) = first_val.zip(first_vec) else {
                break; // nothing converged in the complement; accept result
            };
            let scale = locked_vals
                .iter()
                .fold(1.0f64, |a, &x| a.max(x.abs()))
                .max(new_val.abs());
            let gap = 1e-7 * scale;
            let kth = kth_selected(&locked_vals, nev, which, ws);
            let improves = match which {
                Which::Smallest => new_val < kth - gap,
                Which::Largest => new_val > kth + gap,
            };
            if !improves {
                ws.put(new_vec);
                break;
            }
            locked_vals.push(new_val);
            locked_vecs.push(new_vec);
            continue;
        }
        let need = nev - locked_vals.len();
        let hint = warm_hint(cfg.start.as_ref(), n, locked_vals.len(), nev, ws);
        let run = lanczos_run(
            op,
            need,
            which,
            cfg,
            &locked_vecs,
            &mut rng,
            hint.as_deref(),
            ws,
        )?;
        if let Some(h) = hint {
            ws.put(h);
        }
        total_iters += run.iterations;
        if run.values.is_empty() {
            // No progress in a full inner run: further restarts are hopeless.
            return Err(LinalgError::NotConverged {
                iterations: total_iters,
                context: "Lanczos (no Ritz pair converged within subspace cap)",
            });
        }
        for (val, vec) in run.values.into_iter().zip(run.vectors) {
            if !val.is_finite() {
                return Err(LinalgError::NonFinite {
                    context: "Lanczos Ritz value",
                });
            }
            locked_vals.push(val);
            locked_vecs.push(vec);
        }
    }

    if locked_vals.len() < nev {
        return Err(LinalgError::NotConverged {
            iterations: total_iters,
            context: "Lanczos (restart budget exhausted)",
        });
    }

    // Sort the locked pairs ascending and keep the wanted `nev`. Values are
    // finite (checked at lock time), so total_cmp agrees with the usual
    // numeric order while never panicking.
    let mut order: Vec<usize> = (0..locked_vals.len()).collect();
    order.sort_by(|&a, &b| locked_vals[a].total_cmp(&locked_vals[b]));
    let selected: Vec<usize> = match which {
        Which::Smallest => order[..nev].to_vec(),
        Which::Largest => order[order.len() - nev..].to_vec(),
    };
    let values: Vec<f64> = selected.iter().map(|&i| locked_vals[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, nev);
    for (c, &i) in selected.iter().enumerate() {
        for (r, &v) in locked_vecs[i].iter().enumerate() {
            vectors.set(r, c, v);
        }
    }
    for v in locked_vecs {
        ws.put(v);
    }
    Ok(PartialEigen {
        values,
        vectors,
        iterations: total_iters,
    })
}

/// Combines the not-yet-locked warm-start columns into one Krylov seed.
/// Returns `None` when no usable hint exists (wrong dimensions, non-finite
/// entries, or every wanted column already locked). The returned buffer
/// belongs to `ws`; the caller puts it back.
fn warm_hint(
    start: Option<&DenseMatrix>,
    n: usize,
    locked: usize,
    nev: usize,
    ws: &mut Workspace,
) -> Option<Vec<f64>> {
    let s = start?;
    if s.rows() != n || s.cols() == 0 || locked >= nev.min(s.cols()) {
        return None;
    }
    let mut hint = ws.take_zeroed(n);
    for c in locked..nev.min(s.cols()) {
        for (r, h) in hint.iter_mut().enumerate() {
            *h += s.get(r, c);
        }
    }
    if hint.iter().all(|v| v.is_finite()) {
        Some(hint)
    } else {
        ws.put(hint);
        None
    }
}

/// The k-th selected eigenvalue from the wanted end: for `Smallest` the
/// `nev`-th smallest locked value, for `Largest` the `nev`-th largest.
fn kth_selected(vals: &[f64], nev: usize, which: Which, ws: &mut Workspace) -> f64 {
    let mut sorted = ws.take_copy(vals);
    sorted.sort_by(f64::total_cmp);
    let kth = match which {
        Which::Smallest => sorted[nev - 1],
        Which::Largest => sorted[sorted.len() - nev],
    };
    ws.put(sorted);
    kth
}

/// Result of one inner Lanczos run: converged extremal Ritz pairs.
struct RunResult {
    values: Vec<f64>,
    vectors: Vec<Vec<f64>>,
    iterations: usize,
}

/// Running ω-recurrence state for selective reorthogonalization.
///
/// `cur[k]` estimates the inner product between the newest basis vector
/// `q_j` and the older `q_k`; `prev` is the same row for `q_{j-1}`. The
/// recurrence (Simon 1984) propagates these through the three-term Lanczos
/// relation for the cost of O(j) flops per iteration — no dot products.
struct OmegaState {
    prev: Vec<f64>,
    cur: Vec<f64>,
    next: Vec<f64>,
    /// `√n·ε` — the round-off floor each estimate is reset to.
    eps1: f64,
    /// `√ε` — the semiorthogonality threshold that triggers a full sweep.
    threshold: f64,
    /// Pair the triggered sweep with one on the following iteration, the
    /// classical way to also clean the vector that *caused* the growth.
    force_next: bool,
}

impl OmegaState {
    fn new(n: usize, m_max: usize, ws: &mut Workspace) -> Self {
        let eps = f64::EPSILON;
        Self {
            prev: ws.take_zeroed(m_max + 1),
            cur: ws.take_zeroed(m_max + 1),
            next: ws.take_zeroed(m_max + 1),
            eps1: (n as f64).sqrt() * eps,
            threshold: eps.sqrt(),
            force_next: false,
        }
    }

    /// Propagates the recurrence to the row of the unnormalized new vector
    /// `w` (`‖w‖ = beta`) and reports whether a full sweep is required.
    /// `alphas` holds `α_0..α_j`, `betas` holds `β_0..β_{j-1}`.
    fn advance_and_check(&mut self, alphas: &[f64], betas: &[f64], beta: f64) -> bool {
        let j = alphas.len() - 1;
        if self.force_next || beta <= 0.0 {
            return true;
        }
        let alpha_j = alphas[j];
        let mut worst = 0.0f64;
        for k in 0..j {
            let cur_at = |i: usize| if i == j { 1.0 } else { self.cur[i] };
            let prev_at = |i: usize| if i + 1 == j { 1.0 } else { self.prev[i] };
            let mut t = betas[k] * cur_at(k + 1) + (alphas[k] - alpha_j) * cur_at(k);
            if k > 0 {
                t += betas[k - 1] * cur_at(k - 1);
            }
            if j > 0 {
                t -= betas[j - 1] * prev_at(k);
            }
            let est = t / beta;
            self.next[k] = est + self.eps1.copysign(est);
            worst = worst.max(self.next[k].abs());
        }
        self.next[j] = self.eps1;
        worst > self.threshold
    }

    /// Records that a full sweep ran: both live rows drop to the round-off
    /// floor and the paired follow-up sweep is armed (or disarmed, when this
    /// sweep *was* the follow-up).
    fn record_full_sweep(&mut self, basis_len: usize) {
        for k in 0..=basis_len.min(self.cur.len() - 1) {
            self.cur[k] = self.eps1;
            self.next[k] = self.eps1;
        }
        self.force_next = !self.force_next;
    }

    /// Rotates the rows after the new vector joins the basis.
    fn rotate(&mut self) {
        std::mem::swap(&mut self.prev, &mut self.cur);
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    fn release(self, ws: &mut Workspace) {
        ws.put(self.prev);
        ws.put(self.cur);
        ws.put(self.next);
    }
}

/// One Lanczos run in the orthogonal complement of `locked`, returning up to
/// `need` converged Ritz pairs from the wanted end of the spectrum. When a
/// warm-start `hint` is supplied it seeds the Krylov sequence (after
/// defensive orthonormalization) and convergence is checked more eagerly,
/// since a good hint converges within a handful of iterations.
#[allow(clippy::too_many_arguments)]
fn lanczos_run(
    op: &impl SymOp,
    need: usize,
    which: Which,
    cfg: &EigenConfig,
    locked: &[Vec<f64>],
    rng: &mut ChaCha8Rng,
    hint: Option<&[f64]>,
    ws: &mut Workspace,
) -> Result<RunResult> {
    let n = op.dim();
    let m_max = cfg.max_subspace.min(n - locked.len()).max(1);
    let selective = cfg.reorth == ReorthPolicy::Selective;
    // The reduction order for the solver-internal dots and norms: canonical
    // lanes, or the historical sequential fold when the bench-only
    // `LegacyScalar` layout asks for the pre-lane kernels.
    let legacy = cfg.layout == crate::layout::KernelLayout::LegacyScalar;
    let dotf: fn(&[f64], &[f64]) -> f64 = if legacy { vecops::dot_seq } else { vecops::dot };
    let normf: fn(&[f64]) -> f64 = if legacy {
        vecops::norm2_seq
    } else {
        vecops::norm2
    };

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m_max);
    let mut alphas: Vec<f64> = Vec::with_capacity(m_max);
    let mut betas: Vec<f64> = Vec::with_capacity(m_max);
    let mut omega = OmegaState::new(n, m_max, ws);

    let seeded = hint.and_then(|h| orthonormalized_seed(h, locked, ws));
    let check_stride = if seeded.is_some() { 4 } else { 20 };
    let mut q = match seeded {
        Some(seed) => seed,
        None => fresh_direction(n, locked, &[], rng, ws)?,
    };
    let mut w = ws.take_zeroed(n);
    let mut exhausted_complement = false;
    let mut run_out: Option<RunResult> = None;

    while basis.len() < m_max {
        op.apply_par_ws(&cfg.pool, ws, &q, &mut w);
        let alpha = dotf(&w, &q);
        vecops::axpy(-alpha, &q, &mut w);
        // Basis vectors and betas are pushed in lockstep, so both are
        // present or both absent.
        if let (Some(prev), Some(&beta_prev)) = (basis.last(), betas.last()) {
            vecops::axpy(-beta_prev, prev, &mut w);
        }
        basis.push(std::mem::replace(&mut q, ws.take_zeroed(n)));
        alphas.push(alpha);

        // Scale estimate for the breakdown/convergence thresholds; it
        // depends only on the tridiagonal entries, not on `w`.
        let scale = alphas
            .iter()
            .fold(0.0f64, |a, &x| a.max(x.abs()))
            .max(betas.iter().fold(0.0f64, |a, &x| a.max(x.abs())))
            .max(1.0);

        let beta = if selective {
            // Strict deflation: project the locked eigenvectors out every
            // iteration no matter what the ω estimates say.
            for _ in 0..2 {
                for b in locked {
                    let c = dotf(&w, b);
                    if c != 0.0 {
                        vecops::axpy(-c, b, &mut w);
                    }
                }
            }
            let beta_est = normf(&w);
            if omega.advance_and_check(&alphas, &betas, beta_est) {
                full_reorth(dotf, locked, &basis, &mut w);
                omega.record_full_sweep(basis.len());
                normf(&w)
            } else {
                omega.force_next = false;
                beta_est
            }
        } else {
            // Historical unconditional path, bit-for-bit.
            full_reorth(dotf, locked, &basis, &mut w);
            normf(&w)
        };

        if beta <= 1e-12 * scale {
            // Invariant subspace of the complement: every Ritz pair is exact.
            if basis.len() + locked.len() >= n {
                exhausted_complement = true;
                break;
            }
            match fresh_direction(n, locked, &basis, rng, ws) {
                Ok(fresh) => {
                    betas.push(0.0);
                    ws.put(std::mem::replace(&mut q, fresh));
                    // The fresh vector is explicitly orthogonal to the whole
                    // basis; restart the ω rows at the round-off floor.
                    omega.record_full_sweep(basis.len());
                    omega.force_next = false;
                    omega.rotate();
                    continue;
                }
                Err(_) => {
                    exhausted_complement = true;
                    break;
                }
            }
        }

        // Periodic convergence check (tridiagonal solve is O(j^3); keep rare).
        let j = basis.len();
        if j >= need.min(m_max) && (j == m_max || j % check_stride == 0) {
            let (theta, s) = solve_tridiag(&alphas, &betas, ws)?;
            let count = converged_extremal(&theta, &s, beta, which, cfg.tol, scale);
            let done = (count >= need || j == m_max) && count > 0;
            if done {
                run_out = Some(extract_pairs(
                    dotf,
                    normf,
                    &basis,
                    &theta,
                    &s,
                    which,
                    count.min(need),
                    locked,
                    ws,
                ));
            }
            let stop = done || (j == m_max && count == 0 && count < need);
            ws.put(theta);
            ws.put_matrix(s);
            if stop {
                break;
            }
        }

        vecops::scale(1.0 / beta, &mut w);
        betas.push(beta);
        std::mem::swap(&mut q, &mut w);
        omega.rotate();
    }

    let result = match run_out {
        Some(r) => r,
        None if basis.is_empty() => RunResult {
            values: vec![],
            vectors: vec![],
            iterations: 0,
        },
        None => {
            // Final solve on whatever subspace we accumulated.
            let (theta, s) = solve_tridiag(&alphas, &betas, ws)?;
            let count = if exhausted_complement {
                // Exact invariant subspace: every pair is converged.
                theta.len()
            } else {
                let last_beta = betas.last().copied().unwrap_or(0.0);
                let scale = theta.iter().fold(1.0f64, |a, &x| a.max(x.abs()));
                converged_extremal(&theta, &s, last_beta, which, cfg.tol, scale)
            };
            let out = extract_pairs(
                dotf,
                normf,
                &basis,
                &theta,
                &s,
                which,
                count.min(need),
                locked,
                ws,
            );
            ws.put(theta);
            ws.put_matrix(s);
            out
        }
    };

    for b in basis {
        ws.put(b);
    }
    ws.put(q);
    ws.put(w);
    omega.release(ws);
    Ok(result)
}

/// Two-pass classical Gram-Schmidt of `w` against the locked set and the
/// whole basis — the historical full reorthogonalization sweep. `dotf` is
/// the reduction the run selected (canonical lanes, or the sequential fold
/// under the bench-only `LegacyScalar` layout).
fn full_reorth(
    dotf: fn(&[f64], &[f64]) -> f64,
    locked: &[Vec<f64>],
    basis: &[Vec<f64>],
    w: &mut [f64],
) {
    for _ in 0..2 {
        for b in locked.iter().chain(basis.iter()) {
            let c = dotf(w, b);
            if c != 0.0 {
                vecops::axpy(-c, b, w);
            }
        }
    }
}

/// Counts how many Ritz pairs are converged, contiguously from the wanted
/// end of the spectrum (locking non-contiguous pairs could skip over a
/// not-yet-converged extremal eigenvalue).
fn converged_extremal(
    theta: &[f64],
    s: &DenseMatrix,
    beta: f64,
    which: Which,
    tol: f64,
    scale: f64,
) -> usize {
    let j = theta.len();
    let mut count = 0;
    for k in 0..j {
        let i = match which {
            Which::Smallest => k,
            Which::Largest => j - 1 - k,
        };
        let bound = beta * s.get(j - 1, i).abs();
        if bound <= tol * scale {
            count += 1;
        } else {
            break;
        }
    }
    count
}

/// Forms `count` Ritz vectors from the wanted end, re-orthogonalized against
/// the locked set. The returned vectors are pool buffers; whoever drops them
/// should put them back.
#[allow(clippy::too_many_arguments)]
fn extract_pairs(
    dotf: fn(&[f64], &[f64]) -> f64,
    normf: fn(&[f64]) -> f64,
    basis: &[Vec<f64>],
    theta: &[f64],
    s: &DenseMatrix,
    which: Which,
    count: usize,
    locked: &[Vec<f64>],
    ws: &mut Workspace,
) -> RunResult {
    let j = theta.len();
    let n = basis.first().map_or(0, Vec::len);
    let mut values = Vec::with_capacity(count);
    let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(count);
    for k in 0..count {
        let i = match which {
            Which::Smallest => k,
            Which::Largest => j - 1 - k,
        };
        let mut y = ws.take_zeroed(n);
        for (r, b) in basis.iter().enumerate() {
            vecops::axpy(s.get(r, i), b, &mut y);
        }
        for l in locked.iter().chain(vectors.iter()) {
            let c = dotf(&y, l);
            vecops::axpy(-c, l, &mut y);
        }
        let nrm = normf(&y);
        if nrm == 0.0 {
            ws.put(y);
            continue; // fully deflated direction; skip rather than emit junk
        }
        vecops::scale(1.0 / nrm, &mut y);
        values.push(theta[i]);
        vectors.push(y);
    }
    RunResult {
        values,
        vectors,
        iterations: j,
    }
}

/// Solves the `j x j` symmetric tridiagonal eigenproblem defined by
/// `alphas` (diagonal) and `betas` (couplings). Returns ascending
/// eigenvalues and the `j x j` eigenvector matrix, both backed by pool
/// buffers the caller returns with `put` / `put_matrix`.
fn solve_tridiag(
    alphas: &[f64],
    betas: &[f64],
    ws: &mut Workspace,
) -> Result<(Vec<f64>, DenseMatrix)> {
    let j = alphas.len();
    let mut d = ws.take_copy(alphas);
    let mut e = ws.take_zeroed(j);
    e[1..j].copy_from_slice(&betas[..j.saturating_sub(1)]);
    let mut z = ws.take_matrix_zeroed(j, j);
    for i in 0..j {
        z.set(i, i, 1.0);
    }
    let solved = tql2(&mut d, &mut e, &mut z);
    ws.put(e);
    match solved {
        Ok(()) => Ok((d, z)),
        Err(err) => {
            ws.put(d);
            ws.put_matrix(z);
            Err(err)
        }
    }
}

/// Defensive orthonormalization of a caller-supplied warm-start vector:
/// projects out the locked directions and normalizes. Returns `None` for a
/// hint with the wrong length, non-finite entries, or one that lies (almost)
/// entirely inside the locked subspace — callers fall back to a random
/// start, so a degenerate hint costs nothing.
fn orthonormalized_seed(hint: &[f64], locked: &[Vec<f64>], ws: &mut Workspace) -> Option<Vec<f64>> {
    if hint.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut v = ws.take_copy(hint);
    for _ in 0..2 {
        for b in locked {
            if b.len() != v.len() {
                ws.put(v);
                return None;
            }
            let c = vecops::dot(&v, b);
            vecops::axpy(-c, b, &mut v);
        }
    }
    if vecops::normalize(&mut v) > 1e-8 {
        Some(v)
    } else {
        ws.put(v);
        None
    }
}

/// Draws a random unit vector orthogonal to `locked` and `basis`.
fn fresh_direction(
    n: usize,
    locked: &[Vec<f64>],
    basis: &[Vec<f64>],
    rng: &mut ChaCha8Rng,
    ws: &mut Workspace,
) -> Result<Vec<f64>> {
    let mut v = ws.take_zeroed(n);
    for _ in 0..8 {
        v.iter_mut().for_each(|x| *x = rng.gen_range(-1.0..1.0));
        for _ in 0..2 {
            for b in locked.iter().chain(basis.iter()) {
                let c = vecops::dot(&v, b);
                vecops::axpy(-c, b, &mut v);
            }
        }
        if vecops::normalize(&mut v) > 1e-8 {
            return Ok(v);
        }
    }
    ws.put(v);
    Err(LinalgError::NotConverged {
        iterations: 8,
        context: "Lanczos fresh-direction generation",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::operator::RankOneUpdate;

    /// Ring graph Laplacian as a CSR matrix (eigenvalues 2 - 2cos(2 pi k/n)).
    fn ring_laplacian(n: usize) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 2.0));
            triplets.push((i, (i + 1) % n, -1.0));
            triplets.push(((i + 1) % n, i, -1.0));
        }
        CsrMatrix::from_triplets(n, &triplets).unwrap()
    }

    fn lanczos_cfg() -> EigenConfig {
        EigenConfig {
            dense_cutoff: 0, // force Lanczos even for small dims
            ..EigenConfig::default()
        }
    }

    #[test]
    fn smallest_of_ring_laplacian_with_degeneracy() {
        let n = 200;
        let a = ring_laplacian(n);
        let dec = sym_eigs(&a, 4, Which::Smallest, &lanczos_cfg()).unwrap();
        // lambda_0 = 0; lambda_1 = lambda_2 = 2 - 2cos(2 pi / n) (degenerate).
        let l1 = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(dec.values[0].abs() < 1e-7, "lambda0 = {}", dec.values[0]);
        assert!((dec.values[1] - l1).abs() < 1e-6);
        assert!((dec.values[2] - l1).abs() < 1e-6, "degenerate copy missed");
        // Residual check against the operator itself.
        for j in 0..4 {
            let q = dec.vector(j);
            let mut aq = vec![0.0; n];
            a.apply(&q, &mut aq);
            for i in 0..n {
                assert!((aq[i] - dec.values[j] * q[i]).abs() < 1e-5);
            }
        }
        // Returned vectors are mutually orthonormal.
        for i in 0..4 {
            for j in i..4 {
                let dot = vecops::dot(&dec.vector(i), &dec.vector(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn legacy_scalar_layout_matches_canonical_to_tolerance() {
        // The bench-only LegacyScalar arm runs the solver-internal
        // reductions in the historical sequential order. Same spectrum to
        // solver tolerance; and on a ring the residual bound applies too.
        let n = 200;
        let a = ring_laplacian(n);
        let canon = sym_eigs(&a, 4, Which::Smallest, &lanczos_cfg()).unwrap();
        let legacy_cfg = EigenConfig {
            layout: crate::layout::KernelLayout::LegacyScalar,
            ..lanczos_cfg()
        };
        let legacy = sym_eigs(&a, 4, Which::Smallest, &legacy_cfg).unwrap();
        for j in 0..4 {
            assert!(
                (canon.values[j] - legacy.values[j]).abs() < 1e-7,
                "eigenvalue {j}: {} vs {}",
                canon.values[j],
                legacy.values[j]
            );
            let q = legacy.vector(j);
            let mut aq = vec![0.0; n];
            a.apply(&q, &mut aq);
            for i in 0..n {
                assert!((aq[i] - legacy.values[j] * q[i]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn legacy_scalar_layout_is_bitwise_canonical_below_lane_width() {
        // Vectors shorter than LANES reduce sequentially under both
        // layouts, so a sub-lane-width operator must produce identical bits.
        let n = vecops::LANES - 1;
        let a = ring_laplacian(n);
        let canon = sym_eigs(&a, 2, Which::Smallest, &lanczos_cfg()).unwrap();
        let legacy_cfg = EigenConfig {
            layout: crate::layout::KernelLayout::LegacyScalar,
            ..lanczos_cfg()
        };
        let legacy = sym_eigs(&a, 2, Which::Smallest, &legacy_cfg).unwrap();
        for j in 0..2 {
            assert_eq!(canon.values[j].to_bits(), legacy.values[j].to_bits());
            let (vc, vl) = (canon.vector(j), legacy.vector(j));
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&vc), bits(&vl), "vector {j}");
        }
    }

    #[test]
    fn largest_matches_dense() {
        let n = 120;
        let a = ring_laplacian(n);
        let lan = sym_eigs(&a, 3, Which::Largest, &lanczos_cfg()).unwrap();
        let dense = eigh(&a.to_dense()).unwrap();
        for j in 0..3 {
            assert!(
                (lan.values[j] - dense.values[n - 3 + j]).abs() < 1e-6,
                "largest eigenvalue {j}: {} vs {}",
                lan.values[j],
                dense.values[n - 3 + j]
            );
        }
    }

    #[test]
    fn rank_one_operator_spectrum() {
        // M = d d^T / s - A for a weighted ring: validate against densified M.
        let n = 90;
        let a = ring_laplacian(n); // treat as generic symmetric sparse
        let d: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let s: f64 = d.iter().sum();
        let op = RankOneUpdate::new(&a, d, 1.0 / s, -1.0).unwrap();
        let lan = sym_eigs(&op, 5, Which::Smallest, &lanczos_cfg()).unwrap();
        let dense = eigh(&densify(&op)).unwrap();
        for j in 0..5 {
            assert!(
                (lan.values[j] - dense.values[j]).abs() < 1e-6,
                "eigenvalue {j}: {} vs {}",
                lan.values[j],
                dense.values[j]
            );
        }
    }

    #[test]
    fn disconnected_graph_multiplicity() {
        // Two disjoint rings: Laplacian kernel has dimension 2; deflated
        // restarts must find both zero eigenvalues.
        let n = 60;
        let mut triplets = Vec::new();
        for half in 0..2 {
            let off = half * (n / 2);
            let m = n / 2;
            for i in 0..m {
                triplets.push((off + i, off + i, 2.0));
                triplets.push((off + i, off + (i + 1) % m, -1.0));
                triplets.push((off + (i + 1) % m, off + i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, &triplets).unwrap();
        let dec = sym_eigs(&a, 3, Which::Smallest, &lanczos_cfg()).unwrap();
        assert!(dec.values[0].abs() < 1e-7);
        assert!(dec.values[1].abs() < 1e-7, "second zero: {}", dec.values[1]);
        assert!(dec.values[2] > 1e-4);
    }

    #[test]
    fn dense_path_used_below_cutoff() {
        let a = ring_laplacian(16);
        let dec = sym_eigs(&a, 2, Which::Smallest, &EigenConfig::default()).unwrap();
        assert!(dec.values[0].abs() < 1e-10);
        assert_eq!(dec.vectors.rows(), 16);
        assert_eq!(dec.vectors.cols(), 2);
    }

    #[test]
    fn nev_zero_and_too_large() {
        let a = ring_laplacian(10);
        let dec = sym_eigs(&a, 0, Which::Smallest, &EigenConfig::default()).unwrap();
        assert!(dec.values.is_empty());
        assert!(sym_eigs(&a, 11, Which::Smallest, &EigenConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ring_laplacian(150);
        let d1 = sym_eigs(&a, 3, Which::Smallest, &lanczos_cfg()).unwrap();
        let d2 = sym_eigs(&a, 3, Which::Smallest, &lanczos_cfg()).unwrap();
        assert_eq!(d1.values, d2.values);
    }

    #[test]
    fn warm_workspace_reuse_is_bit_identical_and_allocation_free() {
        let a = ring_laplacian(150);
        let cold = sym_eigs(&a, 3, Which::Smallest, &lanczos_cfg()).unwrap();
        let mut ws = Workspace::new();
        let first = sym_eigs_ws(&a, 3, Which::Smallest, &lanczos_cfg(), &mut ws).unwrap();
        let warm_fresh = ws.fresh_allocations();
        let second = sym_eigs_ws(&a, 3, Which::Smallest, &lanczos_cfg(), &mut ws).unwrap();
        assert_eq!(cold.values, first.values);
        assert_eq!(first.values, second.values);
        assert_eq!(
            first.vectors.as_slice(),
            second.vectors.as_slice(),
            "workspace reuse must not change results"
        );
        assert_eq!(
            ws.fresh_allocations(),
            warm_fresh,
            "steady-state solve drew every buffer from the pool"
        );
    }

    #[test]
    fn selective_matches_full_to_residual_tolerance() {
        let n = 200;
        let a = ring_laplacian(n);
        let full_cfg = EigenConfig {
            reorth: ReorthPolicy::Full,
            ..lanczos_cfg()
        };
        let sel_cfg = EigenConfig {
            reorth: ReorthPolicy::Selective,
            ..lanczos_cfg()
        };
        let full = sym_eigs(&a, 4, Which::Smallest, &full_cfg).unwrap();
        let sel = sym_eigs(&a, 4, Which::Smallest, &sel_cfg).unwrap();
        for j in 0..4 {
            assert!(
                (full.values[j] - sel.values[j]).abs() < 1e-7,
                "eigenvalue {j}: full {} vs selective {}",
                full.values[j],
                sel.values[j]
            );
            // Selective residuals must still satisfy the solver tolerance.
            let q = sel.vector(j);
            let mut aq = vec![0.0; n];
            a.apply(&q, &mut aq);
            let resid: f64 = aq
                .iter()
                .zip(&q)
                .map(|(av, qv)| (av - sel.values[j] * qv) * (av - sel.values[j] * qv))
                .sum::<f64>()
                .sqrt();
            assert!(resid < 1e-6, "selective residual {j}: {resid}");
        }
        // Selective keeps the basis semiorthogonal: returned eigenvectors
        // stay mutually orthonormal to working precision.
        for i in 0..4 {
            for j in i..4 {
                let dot = vecops::dot(&sel.vector(i), &sel.vector(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "orthonormality ({i},{j})");
            }
        }
    }

    #[test]
    fn warm_start_converges_in_fewer_iterations() {
        let n = 300;
        let a = ring_laplacian(n);
        let cold = sym_eigs(&a, 4, Which::Smallest, &lanczos_cfg()).unwrap();
        assert!(cold.iterations > 0, "Lanczos path must actually iterate");
        // Seed the next solve with the converged eigenvectors (the online
        // repartitioning pattern: epoch t+1 starts from epoch t's basis).
        let warm_cfg = EigenConfig {
            start: Some(cold.vectors.clone()),
            ..lanczos_cfg()
        };
        let warm = sym_eigs(&a, 4, Which::Smallest, &warm_cfg).unwrap();
        for j in 0..4 {
            assert!(
                (warm.values[j] - cold.values[j]).abs() < 1e-6,
                "eigenvalue {j}: warm {} vs cold {}",
                warm.values[j],
                cold.values[j]
            );
        }
        assert!(
            warm.iterations < cold.iterations,
            "warm start should converge faster: {} vs {} iterations",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn degenerate_warm_start_is_ignored_not_fatal() {
        let n = 150;
        let a = ring_laplacian(n);
        // Wrong dimensions, zero columns, and non-finite entries must all
        // silently fall back to the cold start.
        for bad in [
            DenseMatrix::zeros(n / 2, 3),
            DenseMatrix::zeros(n, 3),
            DenseMatrix::from_fn(n, 3, |_, _| f64::NAN),
        ] {
            let cfg = EigenConfig {
                start: Some(bad),
                ..lanczos_cfg()
            };
            let dec = sym_eigs(&a, 3, Which::Smallest, &cfg).unwrap();
            assert!(dec.values[0].abs() < 1e-6);
        }
    }

    #[test]
    fn full_spectrum_request() {
        // nev == n exercises complement exhaustion.
        let n = 24;
        let a = ring_laplacian(n);
        let dec = sym_eigs(&a, n, Which::Smallest, &lanczos_cfg()).unwrap();
        let dense = eigh(&a.to_dense()).unwrap();
        for j in 0..n {
            assert!(
                (dec.values[j] - dense.values[j]).abs() < 1e-6,
                "eigenvalue {j}: {} vs {}",
                dec.values[j],
                dense.values[j]
            );
        }
    }
}
