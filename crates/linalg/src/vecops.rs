//! Free functions on `&[f64]` vectors.
//!
//! These are the hot inner kernels of the eigensolvers, kept as plain slice
//! functions so the compiler can vectorize them and callers avoid any
//! wrapper-type overhead.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Explicit left-to-right loop: the accumulation order is part of the
    // bit-identity contract (and what the float-determinism audit checks),
    // not an iterator implementation detail.
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit L2 norm in place and returns the original norm.
///
/// A zero vector is left untouched and `0.0` is returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Sum of all entries.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Population variance around `mu`; `0.0` for an empty slice.
#[inline]
pub fn variance_around(a: &[f64], mu: f64) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / a.len() as f64
}

/// `sqrt(a^2 + b^2)` without undue overflow or underflow.
#[inline]
pub fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

/// True if any entry is NaN or infinite.
#[inline]
pub fn has_non_finite(a: &[f64]) -> bool {
    a.iter().any(|x| !x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_untouched() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn mean_and_variance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&a), 2.5);
        assert!((variance_around(&a, 2.5) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance_around(&[], 0.0), 0.0);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!has_non_finite(&[1.0, 2.0]));
        assert!(has_non_finite(&[1.0, f64::NAN]));
        assert!(has_non_finite(&[f64::INFINITY]));
    }
}
