//! Free functions on `&[f64]` vectors.
//!
//! These are the hot inner kernels of the eigensolvers, kept as plain slice
//! functions so the compiler can vectorize them and callers avoid any
//! wrapper-type overhead.
//!
//! # Lane-unrolled reductions and the canonical order
//!
//! Reductions ([`dot`], [`norm2`]) run [`LANES`]-wide: lane `l` accumulates
//! the terms whose element index is `≡ l (mod LANES)`, in ascending index
//! order, and the lane partials are combined by the **fixed reduction tree**
//! in [`reduce_lanes`]. That order — not "whatever the optimizer picked" —
//! is the canonical reduction order of this crate, the same contract the
//! PR 4 chunk merges established one level up: the schedule is a pure
//! function of the input length, so the result is bit-identical on every
//! machine and at every thread-pool width. Inputs shorter than [`LANES`]
//! reduce by the plain left-to-right fold ([`dot_seq`]), which keeps the
//! short vectors that dominate road-graph CSR rows (2–6 stored entries)
//! bit-stable against the historical scalar kernels.
//!
//! The audit's `float-determinism` rule blesses these helpers as the one
//! sanctioned fixed-order reduction primitive (see
//! `crates/audit/src/rules.rs::FLOAT_REDUCE_EXEMPT_FILES`); every other hot
//! kernel is expected to route through them or use an explicit indexed loop.

/// Accumulator-lane width of the unrolled reductions. Eight 64-bit lanes
/// fill two 4-wide AVX2 registers (or four 2-wide NEON registers) and give
/// the out-of-order core enough independent add chains to hide FMA latency;
/// benchmarks against a 4-lane variant are recorded in DESIGN.md ("SIMD &
/// memory layout").
pub const LANES: usize = 8;

/// Combines [`LANES`] lane partials with the blessed fixed reduction tree
/// `((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))`.
///
/// The tree shape is part of the bit-identity contract: every lane-unrolled
/// reduction in the workspace must combine its partials exactly this way so
/// results stay reproducible across kernels and refactors.
#[inline]
pub fn reduce_lanes(acc: &[f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Plain left-to-right scalar dot product — the historical kernel, kept as
/// the reference arm for the scalar-vs-lanes differential tests and
/// benchmarks, and as the short-input path of [`dot`].
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Explicit left-to-right loop: the accumulation order is part of the
    // bit-identity contract (and what the float-determinism audit checks),
    // not an iterator implementation detail.
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Dot product of two equal-length slices in the canonical lane order (see
/// the module docs): [`LANES`] interleaved accumulator chains combined by
/// the fixed reduction tree, with a left-to-right fold for inputs shorter
/// than [`LANES`].
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < LANES {
        return dot_seq(a, b);
    }
    let mut acc = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    // Tail elements at global index m·LANES + l belong to lane l, appended
    // after the full blocks — exactly the strided canonical order.
    for (l, (x, y)) in chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .enumerate()
    {
        acc[l] += x * y;
    }
    reduce_lanes(&acc)
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean norm in the historical left-to-right order ([`dot_seq`]).
/// Reference arm for the scalar-vs-lanes differentials and the
/// [`crate::layout::KernelLayout::LegacyScalar`] bench emulation.
#[inline]
pub fn norm2_seq(a: &[f64]) -> f64 {
    dot_seq(a, a).sqrt()
}

/// `y += alpha * x`.
///
/// Elementwise — every output bit is independent of the iteration schedule,
/// so the [`LANES`]-wide unroll below is trivially bit-identical to the
/// scalar loop; it exists purely to hand the vectorizer full blocks.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (yb, xb) in yc.by_ref().zip(xc.by_ref()) {
        for l in 0..LANES {
            yb[l] += alpha * xb[l];
        }
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place (elementwise; schedule-independent like [`axpy`]).
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    let mut xc = x.chunks_exact_mut(LANES);
    for xb in xc.by_ref() {
        for xi in xb {
            *xi *= alpha;
        }
    }
    for xi in xc.into_remainder() {
        *xi *= alpha;
    }
}

/// `out[i] = s[i] * x[i]` — the elementwise diagonal-scaling kernel of the
/// normalized-cut operator (schedule-independent like [`axpy`]).
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn mul_into(s: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(s.len(), x.len());
    debug_assert_eq!(s.len(), out.len());
    let mut oc = out.chunks_exact_mut(LANES);
    let mut sc = s.chunks_exact(LANES);
    let mut xc = x.chunks_exact(LANES);
    for ((ob, sb), xb) in oc.by_ref().zip(sc.by_ref()).zip(xc.by_ref()) {
        for l in 0..LANES {
            ob[l] = sb[l] * xb[l];
        }
    }
    for ((oi, si), xi) in oc
        .into_remainder()
        .iter_mut()
        .zip(sc.remainder())
        .zip(xc.remainder())
    {
        *oi = si * xi;
    }
}

/// `y[i] = sign * s[i] * y[i] + shift * x[i]` — the output-side combine of
/// the diag-scaled operator (elementwise; schedule-independent like
/// [`axpy`]).
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn diag_combine(sign: f64, s: &[f64], shift: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(s.len(), x.len());
    debug_assert_eq!(s.len(), y.len());
    let mut yc = y.chunks_exact_mut(LANES);
    let mut sc = s.chunks_exact(LANES);
    let mut xc = x.chunks_exact(LANES);
    for ((yb, sb), xb) in yc.by_ref().zip(sc.by_ref()).zip(xc.by_ref()) {
        for l in 0..LANES {
            yb[l] = sign * sb[l] * yb[l] + shift * xb[l];
        }
    }
    for ((yi, si), xi) in yc
        .into_remainder()
        .iter_mut()
        .zip(sc.remainder())
        .zip(xc.remainder())
    {
        *yi = sign * si * *yi + shift * xi;
    }
}

/// Normalizes `x` to unit L2 norm in place and returns the original norm.
///
/// A zero vector is left untouched and `0.0` is returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Sum of all entries.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Population variance around `mu`; `0.0` for an empty slice.
#[inline]
pub fn variance_around(a: &[f64], mu: f64) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / a.len() as f64
}

/// `sqrt(a^2 + b^2)` without undue overflow or underflow.
#[inline]
pub fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

/// True if any entry is NaN or infinite.
#[inline]
pub fn has_non_finite(a: &[f64]) -> bool {
    a.iter().any(|x| !x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
    }

    /// Scalar model of the documented canonical lane order, used to pin the
    /// optimized kernel to its spec rather than to itself.
    fn dot_lane_model(a: &[f64], b: &[f64]) -> f64 {
        if a.len() < LANES {
            return dot_seq(a, b);
        }
        let mut acc = [0.0f64; LANES];
        for i in 0..a.len() {
            acc[i % LANES] += a[i] * b[i];
        }
        reduce_lanes(&acc)
    }

    #[test]
    fn dot_matches_canonical_model_at_every_remainder() {
        for n in 0..=4 * LANES {
            let a: Vec<f64> = (0..n).map(|i| 0.3 + 1.7 * i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.1 - 0.9 * i as f64).collect();
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_lane_model(&a, &b).to_bits(),
                "length {n}"
            );
        }
    }

    #[test]
    fn short_dot_matches_sequential_fold() {
        for n in 0..LANES {
            let a: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.5).collect();
            assert_eq!(dot(&a, &a).to_bits(), dot_seq(&a, &a).to_bits());
        }
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn elementwise_kernels_cover_blocks_and_remainders() {
        for n in [0, 1, LANES - 1, LANES, LANES + 3, 3 * LANES + 5] {
            let x: Vec<f64> = (0..n).map(|i| 0.25 * i as f64 - 1.0).collect();
            let mut y: Vec<f64> = (0..n).map(|i| 2.0 - 0.5 * i as f64).collect();
            let expect: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| yi + 1.5 * xi).collect();
            axpy(1.5, &x, &mut y);
            assert_eq!(y, expect);

            let mut z = x.clone();
            scale(-2.0, &mut z);
            let expect: Vec<f64> = x.iter().map(|xi| xi * -2.0).collect();
            assert_eq!(z, expect);

            let mut out = vec![0.0; n];
            mul_into(&x, &y, &mut out);
            let expect: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| xi * yi).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_untouched() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn mean_and_variance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&a), 2.5);
        assert!((variance_around(&a, 2.5) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance_around(&[], 0.0), 0.0);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!has_non_finite(&[1.0, 2.0]));
        assert!(has_non_finite(&[1.0, f64::NAN]));
        assert!(has_non_finite(&[f64::INFINITY]));
    }
}
