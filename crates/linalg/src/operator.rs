//! Matrix-free linear operators.
//!
//! The α-Cut matrix `M = d dᵀ / (1ᵀD1) − A` is dense (the rank-one term
//! touches every entry) but has sparse-plus-rank-one structure, so large
//! instances are eigensolved through this trait rather than materialized.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::par::{self, ThreadPool};
use crate::vecops;
use crate::workspace::Workspace;

/// A symmetric linear operator `y = Op(x)` known only through its action.
pub trait SymOp {
    /// Operator dimension `n` (it maps `R^n -> R^n`).
    fn dim(&self) -> usize;

    /// Computes `y = Op(x)`. Implementations may assume
    /// `x.len() == y.len() == self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Checked wrapper around [`SymOp::apply`].
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    fn apply_checked(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                found: x.len(),
                context: "SymOp::apply input",
            });
        }
        if y.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                found: y.len(),
                context: "SymOp::apply output",
            });
        }
        self.apply(x, y);
        Ok(())
    }

    /// Computes `y = Op(x)` with work distributed over `pool`.
    ///
    /// The default implementation runs [`SymOp::apply`] serially; operator
    /// types with parallelizable structure override it. Every override must
    /// follow the determinism rule of [`crate::par`]: fixed chunk
    /// boundaries and ordered reductions, so the result is bit-identical
    /// at every pool size.
    fn apply_par(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        let _ = pool;
        self.apply(x, y);
    }

    /// [`SymOp::apply_par`] drawing any internal scratch buffers from `ws`
    /// instead of allocating.
    ///
    /// The default delegates to [`SymOp::apply_par`] (correct for operators
    /// with no internal scratch, like CSR and dense matrices). Operators
    /// that do allocate per apply — [`DiagScaledOp`]'s diagonal-scaled input
    /// — override this so the Lanczos hot loop runs allocation-free. The
    /// result must be bit-identical to [`SymOp::apply_par`]: a recycled
    /// buffer holds exactly the values a fresh one would.
    fn apply_par_ws(&self, pool: &ThreadPool, ws: &mut Workspace, x: &[f64], y: &mut [f64]) {
        let _ = ws;
        self.apply_par(pool, x, y);
    }

    /// Checked wrapper around [`SymOp::apply_par`].
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    fn apply_par_checked(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                found: x.len(),
                context: "SymOp::apply_par input",
            });
        }
        if y.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                found: y.len(),
                context: "SymOp::apply_par output",
            });
        }
        self.apply_par(pool, x, y);
        Ok(())
    }
}

impl SymOp for CsrMatrix {
    fn dim(&self) -> usize {
        self.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // Row-wise kernel needs no shape check, so no fallible call here.
        self.rows_into(0, x, y);
    }

    fn apply_par(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), SymOp::dim(self));
        pool.for_each_chunk_mut(y, par::DEFAULT_CHUNK, |r, yc| {
            self.rows_into(r.start, x, yc);
        });
    }
}

impl SymOp for DenseMatrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // Row-wise dots are infallible for any `x`/`y` of the trait's
        // contract length; no fallible matvec call needed.
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vecops::dot(self.row(i), x);
        }
    }

    fn apply_par(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols());
        pool.for_each_chunk_mut(y, par::DEFAULT_CHUNK, |r, yc| {
            for (yi, i) in yc.iter_mut().zip(r) {
                *yi = vecops::dot(self.row(i), x);
            }
        });
    }
}

/// `Op(x) = scale * u (uᵀ x) + base(x) * base_sign`.
///
/// With `u = d` (the degree vector), `scale = 1 / sum(d)` and
/// `base_sign = -1.0` this is exactly the α-Cut matrix
/// `M = d dᵀ / (1ᵀ D 1) − A` of Eq. 6 without ever materializing the dense
/// rank-one term.
pub struct RankOneUpdate<'a, B: SymOp> {
    base: &'a B,
    u: Vec<f64>,
    scale: f64,
    base_sign: f64,
}

impl<'a, B: SymOp> RankOneUpdate<'a, B> {
    /// Creates the operator `scale * u uᵀ + base_sign * base`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `u.len() != base.dim()`,
    /// and [`LinalgError::InvalidInput`] on non-finite inputs.
    pub fn new(base: &'a B, u: Vec<f64>, scale: f64, base_sign: f64) -> Result<Self> {
        if u.len() != base.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: base.dim(),
                found: u.len(),
                context: "RankOneUpdate vector",
            });
        }
        if vecops::has_non_finite(&u) || !scale.is_finite() || !base_sign.is_finite() {
            return Err(LinalgError::InvalidInput(
                "RankOneUpdate requires finite inputs".into(),
            ));
        }
        Ok(Self {
            base,
            u,
            scale,
            base_sign,
        })
    }
}

impl<B: SymOp + Sync> SymOp for RankOneUpdate<'_, B> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.base.apply(x, y);
        if self.base_sign != 1.0 {
            vecops::scale(self.base_sign, y);
        }
        let coeff = self.scale * vecops::dot(&self.u, x);
        vecops::axpy(coeff, &self.u, y);
    }

    // The α-Cut apply: base matvec, rank-one correction via a chunked dot
    // with ordered partial sums — bit-identical at every pool size.
    fn apply_par(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        self.base.apply_par(pool, x, y);
        if self.base_sign != 1.0 {
            par::scale(pool, self.base_sign, y);
        }
        let coeff = self.scale * par::dot(pool, &self.u, x);
        par::axpy(pool, coeff, &self.u, y);
    }

    // Scratch-free itself, but the base may pool (e.g. a diag-scaled base).
    fn apply_par_ws(&self, pool: &ThreadPool, ws: &mut Workspace, x: &[f64], y: &mut [f64]) {
        self.base.apply_par_ws(pool, ws, x, y);
        if self.base_sign != 1.0 {
            par::scale(pool, self.base_sign, y);
        }
        let coeff = self.scale * par::dot(pool, &self.u, x);
        par::axpy(pool, coeff, &self.u, y);
    }
}

/// Operator scaled on both sides by a diagonal: `Op(x) = S · base(S · x) · sign + shift·x`,
/// where `S = diag(s)`.
///
/// With `s = d^{-1/2}`, `sign = -1` and `shift = 1` this is the normalized
/// Laplacian `L_sym = I − D^{-1/2} A D^{-1/2}` used by the normalized-cut
/// baseline.
pub struct DiagScaledOp<'a, B: SymOp> {
    base: &'a B,
    s: Vec<f64>,
    sign: f64,
    shift: f64,
}

impl<'a, B: SymOp> DiagScaledOp<'a, B> {
    /// Creates `sign * S base S + shift * I` with `S = diag(s)`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `s.len() != base.dim()`.
    pub fn new(base: &'a B, s: Vec<f64>, sign: f64, shift: f64) -> Result<Self> {
        if s.len() != base.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: base.dim(),
                found: s.len(),
                context: "DiagScaledOp diagonal",
            });
        }
        Ok(Self {
            base,
            s,
            sign,
            shift,
        })
    }
}

impl<B: SymOp + Sync> SymOp for DiagScaledOp<'_, B> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.dim();
        let mut sx = vec![0.0; n];
        vecops::mul_into(&self.s, x, &mut sx);
        self.base.apply(&sx, y);
        vecops::diag_combine(self.sign, &self.s, self.shift, x, y);
    }

    fn apply_par(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        let mut ws = Workspace::new();
        self.apply_par_ws(pool, &mut ws, x, y);
    }

    // The one per-apply allocation in the normalized-Laplacian hot path:
    // the diagonal-scaled input. Pooled here so Lanczos iterates without
    // touching the allocator.
    fn apply_par_ws(&self, pool: &ThreadPool, ws: &mut Workspace, x: &[f64], y: &mut [f64]) {
        let n = self.dim();
        let mut sx = ws.take_zeroed(n);
        pool.for_each_chunk_mut(&mut sx, par::DEFAULT_CHUNK, |r, out| {
            let (lo, hi) = (r.start, r.end);
            vecops::mul_into(&self.s[lo..hi], &x[lo..hi], out);
        });
        self.base.apply_par_ws(pool, ws, &sx, y);
        pool.for_each_chunk_mut(y, par::DEFAULT_CHUNK, |r, yc| {
            let (lo, hi) = (r.start, r.end);
            vecops::diag_combine(self.sign, &self.s[lo..hi], self.shift, &x[lo..hi], yc);
        });
        ws.put(sx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap()
    }

    #[test]
    fn csr_as_op() {
        let a = path3();
        let mut y = [0.0; 3];
        a.apply_checked(&[1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, [1.0, 2.0, 1.0]);
    }

    #[test]
    fn rank_one_matches_explicit_alpha_cut_matrix() {
        let a = path3();
        let d = a.degrees();
        let s: f64 = d.iter().sum();
        let op = RankOneUpdate::new(&a, d.clone(), 1.0 / s, -1.0).unwrap();
        // Explicit M = d d^T / s - A
        let dense_a = a.to_dense();
        let m = DenseMatrix::from_fn(3, 3, |i, j| d[i] * d[j] / s - dense_a.get(i, j));
        for x in [[1.0, 0.0, 0.0], [0.3, -1.2, 2.0]] {
            let mut y1 = [0.0; 3];
            let mut y2 = [0.0; 3];
            op.apply_checked(&x, &mut y1).unwrap();
            m.matvec(&x, &mut y2).unwrap();
            for (a, b) in y1.iter().zip(&y2) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diag_scaled_matches_normalized_laplacian() {
        let a = path3();
        let d = a.degrees();
        let s: Vec<f64> = d.iter().map(|&x| 1.0 / x.sqrt()).collect();
        let op = DiagScaledOp::new(&a, s.clone(), -1.0, 1.0).unwrap();
        let dense_a = a.to_dense();
        let lsym = DenseMatrix::from_fn(3, 3, |i, j| {
            let delta = if i == j { 1.0 } else { 0.0 };
            delta - s[i] * dense_a.get(i, j) * s[j]
        });
        let x = [0.5, -0.25, 1.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        op.apply_checked(&x, &mut y1).unwrap();
        lsym.matvec(&x, &mut y2).unwrap();
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dimension_checks() {
        let a = path3();
        assert!(RankOneUpdate::new(&a, vec![1.0; 2], 1.0, 1.0).is_err());
        assert!(DiagScaledOp::new(&a, vec![1.0; 4], 1.0, 0.0).is_err());
        let op = RankOneUpdate::new(&a, vec![1.0; 3], 1.0, 1.0).unwrap();
        let mut y = [0.0; 2];
        assert!(op.apply_checked(&[1.0; 3], &mut y).is_err());
    }
}
