//! Reusable scratch-buffer pool for the solver hot paths.
//!
//! The Lanczos restart loop, Ritz-vector formation, and the operator
//! applications all need length-`n` float buffers every iteration. Before
//! this module each of those sites allocated a fresh `Vec` (27 allocation
//! sites in `lanczos.rs` alone); with a [`Workspace`] threaded through the
//! solver the buffers are recycled, so a warm solve — the steady state of
//! the online repartitioning engine in `roadpart-stream` — runs the hot
//! loops allocation-free.
//!
//! A workspace is deliberately *not* shared across threads: the solver hot
//! paths are sequential at the orchestration level (parallelism lives inside
//! the chunked kernels of [`crate::par`], which own their slices), so a
//! plain `&mut Workspace` is enough and no locking exists to get wrong.
//!
//! Recycled buffers never change results: [`Workspace::take_zeroed`] returns
//! a zero-filled buffer and [`Workspace::take_copy`] a copy of its source,
//! exactly what the historical `vec![0.0; n]` / `to_vec()` sites produced —
//! the bit-identity guarantees of PR 4 carry over unchanged.

use crate::dense::DenseMatrix;

/// A free-list pool of `Vec<f64>` scratch buffers.
///
/// `take_*` methods pop a pooled buffer (preferring one whose capacity
/// already fits) and [`Workspace::put`] returns it. Steady-state counters
/// ([`Workspace::takes`] / [`Workspace::fresh_allocations`]) let benches and
/// tests assert that a warmed-up solve no longer allocates.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f64>>,
    takes: u64,
    fresh: u64,
}

impl Workspace {
    /// An empty pool; the first solve warms it up.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled buffer of length `n`, recycled when possible.
    #[must_use]
    pub fn take_zeroed(&mut self, n: usize) -> Vec<f64> {
        let mut buf = self.take_raw(n);
        buf.resize(n, 0.0);
        buf
    }

    /// A buffer holding a copy of `src`, recycled when possible.
    #[must_use]
    pub fn take_copy(&mut self, src: &[f64]) -> Vec<f64> {
        let mut buf = self.take_raw(src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// A zero-filled `rows x cols` matrix backed by a recycled buffer.
    /// Return it with [`Workspace::put_matrix`].
    #[must_use]
    pub fn take_matrix_zeroed(&mut self, rows: usize, cols: usize) -> DenseMatrix {
        match DenseMatrix::from_vec(rows, cols, self.take_zeroed(rows * cols)) {
            Ok(m) => m,
            // Unreachable: the buffer length matches rows * cols by
            // construction. Kept total so the pool can never panic.
            Err(_) => DenseMatrix::zeros(rows, cols),
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn put_matrix(&mut self, m: DenseMatrix) {
        self.put(m.into_vec());
    }

    /// Total `take_*` calls served over the workspace's lifetime.
    #[must_use]
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// How many `take_*` calls could not be served from the pool and had to
    /// allocate (or grow) a buffer. A warmed-up solve keeps this flat.
    #[must_use]
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh
    }

    /// Number of buffers currently pooled.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// An empty buffer with capacity for at least `n` elements.
    fn take_raw(&mut self, n: usize) -> Vec<f64> {
        self.takes += 1;
        // Best fit: the smallest pooled buffer that already holds `n`
        // (ties broken toward the most recently returned). First fit would
        // let small requests steal big buffers and leave later big requests
        // allocating again — best fit keeps a repeating take/put pattern
        // (the warm-solve steady state) allocation-free.
        let mut best: Option<(usize, usize)> = None;
        for (pos, b) in self.free.iter().enumerate() {
            let cap = b.capacity();
            if cap >= n && best.map_or(true, |(_, c)| cap <= c) {
                best = Some((pos, cap));
            }
        }
        if let Some((pos, _)) = best {
            let mut buf = self.free.swap_remove(pos);
            buf.clear();
            return buf;
        }
        self.fresh += 1;
        // Recycle an undersized buffer's allocation if one exists; `resize`
        // or `extend_from_slice` grows it once and it stays big thereafter.
        if let Some(mut buf) = self.free.pop() {
            buf.clear();
            buf.reserve(n);
            return buf;
        }
        Vec::with_capacity(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_zeroed_even_after_reuse() {
        let mut ws = Workspace::new();
        let mut a = ws.take_zeroed(8);
        a.iter_mut().for_each(|v| *v = 3.5);
        ws.put(a);
        let b = ws.take_zeroed(8);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut ws = Workspace::new();
        let src = [1.0, -2.0, 0.5];
        let got = ws.take_copy(&src);
        assert_eq!(got, src);
    }

    #[test]
    fn steady_state_stops_allocating() {
        let mut ws = Workspace::new();
        // Warm-up: three live buffers at once.
        let bufs: Vec<_> = (0..3).map(|_| ws.take_zeroed(64)).collect();
        let warm_fresh = ws.fresh_allocations();
        assert_eq!(warm_fresh, 3);
        bufs.into_iter().for_each(|b| ws.put(b));
        // Steady state: the same working set recycles.
        for _ in 0..10 {
            let bufs: Vec<_> = (0..3).map(|_| ws.take_zeroed(64)).collect();
            bufs.into_iter().for_each(|b| ws.put(b));
        }
        assert_eq!(ws.fresh_allocations(), warm_fresh);
        assert_eq!(ws.takes(), 3 + 30);
    }

    #[test]
    fn undersized_buffers_are_grown_not_leaked() {
        let mut ws = Workspace::new();
        ws.put(vec![1.0; 4]);
        let big = ws.take_zeroed(128);
        assert_eq!(big.len(), 128);
        assert!(big.iter().all(|&v| v == 0.0));
        assert_eq!(ws.pooled(), 0, "small buffer was recycled, not dropped");
    }

    #[test]
    fn matrix_round_trip() {
        let mut ws = Workspace::new();
        let mut m = ws.take_matrix_zeroed(3, 3);
        m.set(1, 1, 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        ws.put_matrix(m);
        let again = ws.take_matrix_zeroed(3, 3);
        assert_eq!(again.get(1, 1), 0.0, "recycled matrix is re-zeroed");
        assert_eq!(ws.fresh_allocations(), 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.put(Vec::new());
        assert_eq!(ws.pooled(), 0);
    }
}
