//! Cache-layout experiment: a blocked (SELL-C–style) CSR variant.
//!
//! Row-major CSR walks `row_ptr` one row at a time, which leaves the short
//! rows of a road-graph adjacency (2–6 stored entries) too small to fill
//! vector lanes. [`BlockedCsrMatrix`] regroups the matrix into blocks of
//! [`BLOCK_ROWS`] consecutive rows stored *slot-major*: slot `j` of every
//! row in the block is contiguous, so the matvec kernel advances
//! [`BLOCK_ROWS`] independent accumulators per inner step — vertical
//! vectorization across rows instead of (futile) horizontal vectorization
//! within a row.
//!
//! **Bit-identity:** each row's partial products are still accumulated in
//! ascending column-slot order into that row's own accumulator, and rows
//! with at least [`crate::vecops::LANES`] entries fall back to the
//! canonical per-row lane kernel — so the product is bit-identical to
//! [`CsrMatrix::matvec`] for every matrix and every pool width. Padding
//! slots are skipped by an explicit bounds check, never folded in as
//! `0.0 · x` (which could flip a signed-zero bit).
//!
//! The layout is selected per pipeline run via [`KernelLayout`] on
//! [`crate::lanczos::EigenConfig`]; `kernels_bench` benchmarks both arms
//! honestly and DESIGN.md records the results, negative ones included.

use crate::csr::{row_gather_dot, CsrMatrix};
use crate::operator::SymOp;
use crate::par::{self, ThreadPool};

/// Memory layout the spectral hot path uses for its sparse operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelLayout {
    /// Plain row-major CSR ([`CsrMatrix`]) — the default.
    #[default]
    RowMajor,
    /// Blocked slot-major CSR ([`BlockedCsrMatrix`]), the cache-layout
    /// experiment arm.
    Blocked,
    /// Benchmark-only emulation of the pre-lane solver: the Lanczos-internal
    /// reductions (reorthogonalization dots, β norms, Ritz formation) run in
    /// the historical left-to-right order (`vecops::{dot_seq, norm2_seq}`)
    /// instead of the canonical lane order. The sparse operator itself stays
    /// row-major — road-graph rows are shorter than `vecops::LANES`, so
    /// their matvec order is the sequential fold under both. Unlike the
    /// other two variants this one is **not** bit-identical to the canonical
    /// order for vectors of length ≥ `LANES`; `pipeline_bench` selects it
    /// for its baseline arm so the checked-in before/after keeps measuring
    /// against the pre-PR kernels, and nothing else should.
    LegacyScalar,
}

/// Rows per block. Must divide [`par::DEFAULT_CHUNK`] so parallel chunk
/// boundaries never split a block.
pub const BLOCK_ROWS: usize = 4;

/// A square sparse matrix grouped into [`BLOCK_ROWS`]-row blocks with
/// slot-major storage (see the module docs). Built from a [`CsrMatrix`];
/// values and pattern are identical, only the memory order differs.
#[derive(Debug, Clone)]
pub struct BlockedCsrMatrix {
    n: usize,
    /// Per-block start offset into `cols`/`vals` (length `blocks + 1`).
    block_ptr: Vec<usize>,
    /// Per-block padded width (the longest row in the block).
    widths: Vec<usize>,
    /// Per-row stored-entry count.
    row_len: Vec<usize>,
    /// Column indices, slot-major within each block: entry `j` of block row
    /// `r` lives at `block_ptr[b] + j * BLOCK_ROWS + r`. Padding slots hold
    /// column `0` and are skipped by the `row_len` bounds check.
    cols: Vec<usize>,
    /// Values in the same slot order as `cols` (padding slots hold `0.0`).
    vals: Vec<f64>,
}

impl BlockedCsrMatrix {
    /// Re-packs a row-major CSR matrix into the blocked layout.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let n = m.dim();
        let blocks = n.div_ceil(BLOCK_ROWS);
        let mut row_len = Vec::with_capacity(n);
        let mut widths = Vec::with_capacity(blocks);
        let mut block_ptr = Vec::with_capacity(blocks + 1);
        block_ptr.push(0);
        for b in 0..blocks {
            let r0 = b * BLOCK_ROWS;
            let r1 = (r0 + BLOCK_ROWS).min(n);
            let mut width = 0;
            for i in r0..r1 {
                let len = m.row(i).0.len();
                row_len.push(len);
                width = width.max(len);
            }
            widths.push(width);
            block_ptr.push(block_ptr[b] + width * BLOCK_ROWS);
        }
        let slots = *block_ptr.last().unwrap_or(&0);
        let mut cols = vec![0usize; slots];
        let mut vals = vec![0.0f64; slots];
        for (b, &base) in block_ptr[..blocks].iter().enumerate() {
            let r0 = b * BLOCK_ROWS;
            let r1 = (r0 + BLOCK_ROWS).min(n);
            for (r, i) in (r0..r1).enumerate() {
                let (rc, rv) = m.row(i);
                for (j, (&c, &v)) in rc.iter().zip(rv).enumerate() {
                    let slot = base + j * BLOCK_ROWS + r;
                    cols[slot] = c;
                    vals[slot] = v;
                }
            }
        }
        Self {
            n,
            block_ptr,
            widths,
            row_len,
            cols,
            vals,
        }
    }

    /// The matrix dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Computes rows `row0 .. row0 + out.len()` of `A x` into `out`.
    /// `row0` and `row0 + out.len()` must fall on block boundaries (or the
    /// matrix end); [`par::DEFAULT_CHUNK`] is a multiple of [`BLOCK_ROWS`],
    /// so the pool's fixed chunks always satisfy this.
    fn rows_into(&self, row0: usize, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(row0 % BLOCK_ROWS, 0);
        let lanes = crate::vecops::LANES;
        for (chunk_b, yb) in out.chunks_mut(BLOCK_ROWS).enumerate() {
            let b = row0 / BLOCK_ROWS + chunk_b;
            let r0 = b * BLOCK_ROWS;
            let width = self.widths[b];
            let base = self.block_ptr[b];
            let lens = &self.row_len[r0..r0 + yb.len()];
            if width < lanes && yb.len() == BLOCK_ROWS {
                // Fast path: every row in the block is short enough that
                // the canonical order is the plain sequential fold, so the
                // slot-major sweep below reproduces it exactly.
                let mut acc = [0.0f64; BLOCK_ROWS];
                for j in 0..width {
                    let s = base + j * BLOCK_ROWS;
                    for r in 0..BLOCK_ROWS {
                        if j < lens[r] {
                            acc[r] += self.vals[s + r] * x[self.cols[s + r]];
                        }
                    }
                }
                yb.copy_from_slice(&acc);
            } else {
                // A row reached the lane-kernel regime (or this is the
                // ragged final block): reduce each row independently in
                // its canonical order via the shared gather-dot.
                for (r, yi) in yb.iter_mut().enumerate() {
                    *yi = self.row_dot(base, lens[r], r, x);
                }
            }
        }
    }

    /// Canonical-order dot of one block row against `x`, reading the
    /// strided slot layout. Gathers the row into a small stack buffer so
    /// the shared [`row_gather_dot`] kernel defines the reduction order.
    fn row_dot(&self, base: usize, len: usize, r: usize, x: &[f64]) -> f64 {
        let mut acc_cols = [0usize; 64];
        let mut acc_vals = [0.0f64; 64];
        if len <= 64 {
            for j in 0..len {
                let s = base + j * BLOCK_ROWS + r;
                acc_cols[j] = self.cols[s];
                acc_vals[j] = self.vals[s];
            }
            row_gather_dot(&acc_cols[..len], &acc_vals[..len], x)
        } else {
            let mut cols = Vec::with_capacity(len);
            let mut vals = Vec::with_capacity(len);
            for j in 0..len {
                let s = base + j * BLOCK_ROWS + r;
                cols.push(self.cols[s]);
                vals.push(self.vals[s]);
            }
            row_gather_dot(&cols, &vals, x)
        }
    }
}

impl SymOp for BlockedCsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.rows_into(0, x, y);
    }

    fn apply_par(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        pool.for_each_chunk_mut(y, par::DEFAULT_CHUNK, |r, yc| {
            self.rows_into(r.start, x, yc);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with_hub(n: usize) -> CsrMatrix {
        // Ring edges plus a hub joined to everyone: row 0 has n-1 entries,
        // exercising the per-row lane fallback inside a block.
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1.0 + i as f64 * 0.1))
            .collect();
        for i in 2..n - 1 {
            edges.push((0, i, 0.5 + i as f64 * 0.01));
        }
        CsrMatrix::from_undirected_edges(n, &edges).unwrap()
    }

    #[test]
    fn blocked_matvec_bit_identical_to_row_major() {
        for n in [1, 3, 4, 5, 17, 64, 130] {
            let m = ring_with_hub(n.max(4));
            let n = m.dim();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() - 0.2).collect();
            let mut y_ref = vec![0.0; n];
            m.matvec(&x, &mut y_ref).unwrap();
            let blocked = BlockedCsrMatrix::from_csr(&m);
            let mut y = vec![0.0; n];
            blocked.apply(&x, &mut y);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&y), bits(&y_ref), "n = {n}");
            for threads in [1, 2, 4] {
                let pool = ThreadPool::new(threads);
                let mut y_par = vec![0.0; n];
                blocked.apply_par(&pool, &x, &mut y_par);
                assert_eq!(bits(&y_par), bits(&y_ref), "n = {n}, threads {threads}");
            }
        }
    }

    #[test]
    fn block_rows_divides_default_chunk() {
        assert_eq!(par::DEFAULT_CHUNK % BLOCK_ROWS, 0);
    }
}
