//! Total-order comparison helpers for `f64`.
//!
//! `f64: !Ord` forces a choice at every float sort/argmax site, and the
//! historically popular choice — `partial_cmp(..).unwrap()` — turns a single
//! stray NaN into a library panic (or, worse, into `sort_by` logic errors
//! when the comparator is inconsistent). The workspace bans that pattern
//! (`roadpart-audit` rule `float-cmp-unwrap`, plus a clippy
//! `disallowed-methods` entry) and routes every float comparison through
//! this module instead.
//!
//! All helpers use [`f64::total_cmp`] (IEEE 754 `totalOrder`): never panics,
//! orders NaN after +∞ and −NaN before −∞, and agrees with the usual `<`
//! ordering on the finite values our pipelines produce.

use std::cmp::Ordering;

/// Total-order comparison of two floats. Drop-in comparator for
/// `sort_by` / `max_by` / `min_by`: `xs.sort_by(|a, b| cmp_f64(*a, *b))`.
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Sorts a float slice ascending under the total order.
#[inline]
pub fn sort_f64(xs: &mut [f64]) {
    xs.sort_unstable_by(f64::total_cmp);
}

/// Sorts a slice ascending by a float key under the total order.
#[inline]
pub fn sort_by_f64_key<T>(xs: &mut [T], mut key: impl FnMut(&T) -> f64) {
    xs.sort_by(|a, b| key(a).total_cmp(&key(b)));
}

/// The item with the largest float key under the total order
/// (last maximum wins, matching [`Iterator::max_by`]); `None` for an
/// empty iterator.
#[inline]
pub fn max_by_f64_key<T>(
    items: impl IntoIterator<Item = T>,
    mut key: impl FnMut(&T) -> f64,
) -> Option<T> {
    items.into_iter().max_by(|a, b| key(a).total_cmp(&key(b)))
}

/// The item with the smallest float key under the total order
/// (first minimum wins, matching [`Iterator::min_by`]); `None` for an
/// empty iterator.
#[inline]
pub fn min_by_f64_key<T>(
    items: impl IntoIterator<Item = T>,
    mut key: impl FnMut(&T) -> f64,
) -> Option<T> {
    items.into_iter().min_by(|a, b| key(a).total_cmp(&key(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_is_total_and_nan_safe() {
        assert_eq!(cmp_f64(1.0, 2.0), Ordering::Less);
        assert_eq!(cmp_f64(2.0, 1.0), Ordering::Greater);
        assert_eq!(cmp_f64(1.5, 1.5), Ordering::Equal);
        // NaN participates in the order instead of panicking.
        assert_eq!(cmp_f64(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(cmp_f64(-f64::NAN, f64::NEG_INFINITY), Ordering::Less);
    }

    #[test]
    fn sort_orders_finite_values_conventionally() {
        let mut xs = vec![3.0, -1.0, 2.5, 0.0];
        sort_f64(&mut xs);
        assert_eq!(xs, vec![-1.0, 0.0, 2.5, 3.0]);
    }

    #[test]
    fn sort_by_key_uses_key_order() {
        let mut xs = vec![(0, 3.0), (1, -1.0), (2, 2.0)];
        sort_by_f64_key(&mut xs, |p| p.1);
        assert_eq!(xs.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 2, 0]);
    }

    #[test]
    fn argmax_argmin_match_iterator_semantics() {
        assert_eq!(max_by_f64_key([1.0, 3.0, 2.0], |&x| x), Some(3.0));
        assert_eq!(min_by_f64_key([1.0, 3.0, 0.5], |&x| x), Some(0.5));
        assert_eq!(max_by_f64_key(std::iter::empty::<f64>(), |&x| x), None);
        // Ties: max keeps the last, min keeps the first.
        assert_eq!(
            max_by_f64_key([(0, 1.0), (1, 1.0)], |p| p.1),
            Some((1, 1.0))
        );
        assert_eq!(
            min_by_f64_key([(0, 1.0), (1, 1.0)], |p| p.1),
            Some((0, 1.0))
        );
    }
}
