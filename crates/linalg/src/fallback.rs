//! Solver fallback ladder: a recovering wrapper around [`sym_eigs`].
//!
//! Lanczos can legitimately fail to converge — tight tolerances on badly
//! conditioned α-Cut matrices, unlucky starting vectors, or operator entries
//! poisoned by bad input data. Rather than abort the whole partitioning
//! pipeline, [`sym_eigs_recovering`] climbs a ladder of progressively more
//! forgiving solver configurations:
//!
//! 1. **Baseline** — the caller's [`EigenConfig`] as-is;
//! 2. **RelaxedTolerance** — the convergence tolerance multiplied by
//!    [`FallbackConfig::tol_relax`] and the restart budget multiplied by
//!    [`FallbackConfig::restart_boost`];
//! 3. **PerturbedSeed** — the relaxed configuration with a decorrelated
//!    starting-vector seed, escaping pathological Krylov starts;
//! 4. **Dense** — exact dense [`eigh`] on the densified operator, attempted
//!    when the dimension is at most [`FallbackConfig::dense_threshold`] or
//!    when [`FallbackConfig::always_dense_last_resort`] is set.
//!
//! Only *numerical* failures ([`LinalgError::NotConverged`] and
//! [`LinalgError::NonFinite`]) trigger the next rung; structural errors
//! (dimension mismatches, invalid input) propagate immediately because no
//! amount of retrying fixes a malformed operand.
//!
//! Every attempt is recorded in a [`RecoveryLog`], giving callers a
//! machine-readable audit trail of how a result was obtained. The log also
//! hosts the fault-injection hook: [`FallbackConfig::inject_failures`]
//! forces the first N attempts to fail with `NotConverged`, which lets
//! integration tests drive the ladder deterministically without rigging the
//! numerics.

use crate::dense::DenseMatrix;
use crate::eigen_dense::eigh;
use crate::error::{LinalgError, Result};
use crate::lanczos::{densify_with, sym_eigs_ws, EigenConfig, PartialEigen, ReorthPolicy, Which};
use crate::operator::SymOp;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// Names one rung of the fallback ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackRung {
    /// The caller's configuration, unmodified.
    Baseline,
    /// Relaxed tolerance and enlarged restart budget.
    RelaxedTolerance,
    /// Relaxed configuration with a perturbed starting-vector seed.
    PerturbedSeed,
    /// Exact dense eigendecomposition of the densified operator.
    Dense,
}

impl FallbackRung {
    /// Short human-readable rung name.
    pub fn name(self) -> &'static str {
        match self {
            FallbackRung::Baseline => "baseline",
            FallbackRung::RelaxedTolerance => "relaxed-tolerance",
            FallbackRung::PerturbedSeed => "perturbed-seed",
            FallbackRung::Dense => "dense",
        }
    }
}

/// Ladder policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FallbackConfig {
    /// Multiplier applied to `tol` on the relaxed rungs. Default: 100.
    pub tol_relax: f64,
    /// Multiplier applied to `max_restarts` on the relaxed rungs. Default: 2.
    pub restart_boost: usize,
    /// XOR mask applied to the seed on the perturbed rung.
    pub seed_perturbation: u64,
    /// Dimension bound under which the dense rung is always attempted.
    /// Default: 4096.
    pub dense_threshold: usize,
    /// Attempt the dense rung even above `dense_threshold` when everything
    /// else failed. Default: true.
    pub always_dense_last_resort: bool,
    /// Fault injection: force the first N solver attempts to fail with
    /// `NotConverged` before any real work happens. Default: 0.
    pub inject_failures: usize,
}

impl Default for FallbackConfig {
    fn default() -> Self {
        Self {
            tol_relax: 100.0,
            restart_boost: 2,
            seed_perturbation: 0x9e37_79b9_7f4a_7c15,
            dense_threshold: 4096,
            always_dense_last_resort: true,
            inject_failures: 0,
        }
    }
}

/// One solver attempt and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Which rung ran.
    pub rung: FallbackRung,
    /// Whether this attempt produced the accepted result.
    pub succeeded: bool,
    /// Failure description (empty on success).
    pub detail: String,
}

/// Machine-readable audit trail of fallback activity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryLog {
    /// Attempts in execution order, across every solve this log witnessed.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one attempt.
    pub fn record(&mut self, rung: FallbackRung, succeeded: bool, detail: impl Into<String>) {
        self.events.push(RecoveryEvent {
            rung,
            succeeded,
            detail: detail.into(),
        });
    }

    /// True when every recorded solve succeeded on its baseline attempt.
    pub fn is_clean(&self) -> bool {
        self.events
            .iter()
            .all(|e| e.rung == FallbackRung::Baseline && e.succeeded)
    }

    /// Number of failed attempts (i.e. rungs that had to be abandoned).
    pub fn failures(&self) -> usize {
        self.events.iter().filter(|e| !e.succeeded).count()
    }

    /// Appends another log's events (used when aggregating pipeline stages).
    pub fn absorb(&mut self, other: RecoveryLog) {
        self.events.extend(other.events);
    }
}

/// [`sym_eigs`] with the fallback ladder described in the module docs.
///
/// On success the returned decomposition is exactly what [`sym_eigs`] (or
/// the dense rung) produced; `log` gains one event per attempt.
///
/// # Errors
/// Propagates structural errors immediately, and returns the *last* rung's
/// numerical error when the whole ladder is exhausted.
pub fn sym_eigs_recovering(
    op: &impl SymOp,
    nev: usize,
    which: Which,
    cfg: &EigenConfig,
    fallback: &FallbackConfig,
    log: &mut RecoveryLog,
) -> Result<PartialEigen> {
    let mut ws = Workspace::new();
    sym_eigs_recovering_ws(op, nev, which, cfg, fallback, log, &mut ws)
}

/// [`sym_eigs_recovering`] drawing scratch buffers from `ws`, so repeated
/// solves (one per repartitioning epoch) reuse the pool across calls.
///
/// # Errors
/// Same contract as [`sym_eigs_recovering`].
#[allow(clippy::too_many_arguments)]
pub fn sym_eigs_recovering_ws(
    op: &impl SymOp,
    nev: usize,
    which: Which,
    cfg: &EigenConfig,
    fallback: &FallbackConfig,
    log: &mut RecoveryLog,
    ws: &mut Workspace,
) -> Result<PartialEigen> {
    let mut injections_left = fallback.inject_failures;
    let mut last_err: Option<LinalgError> = None;

    for rung in [
        FallbackRung::Baseline,
        FallbackRung::RelaxedTolerance,
        FallbackRung::PerturbedSeed,
        FallbackRung::Dense,
    ] {
        if rung == FallbackRung::Dense && !dense_rung_allowed(op.dim(), fallback) {
            continue;
        }
        let attempt = if injections_left > 0 {
            injections_left -= 1;
            Err(LinalgError::NotConverged {
                iterations: 0,
                context: "fault injection (forced failure)",
            })
        } else {
            run_rung(op, nev, which, cfg, fallback, rung, ws)
        };
        match attempt {
            Ok(dec) => {
                log.record(rung, true, "");
                return Ok(dec);
            }
            Err(err) if is_recoverable(&err) => {
                log.record(rung, false, err.to_string());
                last_err = Some(err);
            }
            Err(err) => {
                // Structural failure: retrying cannot help.
                log.record(rung, false, err.to_string());
                return Err(err);
            }
        }
    }

    Err(last_err.unwrap_or(LinalgError::NotConverged {
        iterations: 0,
        context: "fallback ladder (no rung was eligible)",
    }))
}

/// Whether an error class is worth retrying with a different configuration.
fn is_recoverable(err: &LinalgError) -> bool {
    matches!(
        err,
        LinalgError::NotConverged { .. } | LinalgError::NonFinite { .. }
    )
}

fn dense_rung_allowed(n: usize, fallback: &FallbackConfig) -> bool {
    n <= fallback.dense_threshold || fallback.always_dense_last_resort
}

fn run_rung(
    op: &impl SymOp,
    nev: usize,
    which: Which,
    cfg: &EigenConfig,
    fallback: &FallbackConfig,
    rung: FallbackRung,
    ws: &mut Workspace,
) -> Result<PartialEigen> {
    match rung {
        FallbackRung::Baseline => sym_eigs_ws(op, nev, which, cfg, ws),
        FallbackRung::RelaxedTolerance => sym_eigs_ws(op, nev, which, &relaxed(cfg, fallback), ws),
        FallbackRung::PerturbedSeed => {
            let mut c = relaxed(cfg, fallback);
            c.seed ^= fallback.seed_perturbation;
            sym_eigs_ws(op, nev, which, &c, ws)
        }
        FallbackRung::Dense => dense_solve(op, nev, which, &cfg.pool),
    }
}

fn relaxed(cfg: &EigenConfig, fallback: &FallbackConfig) -> EigenConfig {
    let mut c = cfg.clone();
    c.tol *= fallback.tol_relax;
    c.max_restarts = c.max_restarts.saturating_mul(fallback.restart_boost.max(1));
    // If the baseline attempt failed under selective reorthogonalization,
    // retry with the unconditional sweep: it is slower but numerically the
    // most robust rung of the ladder.
    c.reorth = ReorthPolicy::Full;
    c
}

/// The dense rung: densify and solve exactly, then slice the wanted end.
fn dense_solve(
    op: &impl SymOp,
    nev: usize,
    which: Which,
    pool: &crate::par::ThreadPool,
) -> Result<PartialEigen> {
    let n = op.dim();
    if nev > n {
        return Err(LinalgError::InvalidInput(format!(
            "requested {nev} eigenpairs of a dimension-{n} operator"
        )));
    }
    let dec = eigh(&densify_with(op, pool))?;
    if dec.values.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite {
            context: "dense fallback eigendecomposition",
        });
    }
    let idx: Vec<usize> = match which {
        Which::Smallest => (0..nev).collect(),
        Which::Largest => (n - nev..n).collect(),
    };
    let values: Vec<f64> = idx.iter().map(|&i| dec.values[i]).collect();
    let vectors = DenseMatrix::from_fn(n, nev, |r, c| dec.vectors.get(r, idx[c]));
    Ok(PartialEigen {
        values,
        vectors,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    fn ring_laplacian(n: usize) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 2.0));
            triplets.push((i, (i + 1) % n, -1.0));
            triplets.push(((i + 1) % n, i, -1.0));
        }
        CsrMatrix::from_triplets(n, &triplets).unwrap()
    }

    #[test]
    fn clean_solve_records_single_baseline_event() {
        let a = ring_laplacian(40);
        let mut log = RecoveryLog::new();
        let dec = sym_eigs_recovering(
            &a,
            3,
            Which::Smallest,
            &EigenConfig::default(),
            &FallbackConfig::default(),
            &mut log,
        )
        .unwrap();
        assert_eq!(dec.values.len(), 3);
        assert_eq!(log.events.len(), 1);
        assert!(log.is_clean());
        assert_eq!(log.failures(), 0);
    }

    #[test]
    fn injected_failures_climb_the_ladder() {
        let a = ring_laplacian(40);
        let fb = FallbackConfig {
            inject_failures: 2,
            ..FallbackConfig::default()
        };
        let mut log = RecoveryLog::new();
        let dec = sym_eigs_recovering(
            &a,
            2,
            Which::Smallest,
            &EigenConfig::default(),
            &fb,
            &mut log,
        )
        .unwrap();
        assert_eq!(dec.values.len(), 2);
        let rungs: Vec<FallbackRung> = log.events.iter().map(|e| e.rung).collect();
        assert_eq!(
            rungs,
            [
                FallbackRung::Baseline,
                FallbackRung::RelaxedTolerance,
                FallbackRung::PerturbedSeed,
            ]
        );
        assert!(!log.events[0].succeeded);
        assert!(!log.events[1].succeeded);
        assert!(log.events[2].succeeded);
        assert_eq!(log.failures(), 2);
        assert!(!log.is_clean());
    }

    #[test]
    fn full_injection_lands_on_dense_rung() {
        let a = ring_laplacian(30);
        let fb = FallbackConfig {
            inject_failures: 3,
            ..FallbackConfig::default()
        };
        let mut log = RecoveryLog::new();
        let dec = sym_eigs_recovering(
            &a,
            2,
            Which::Smallest,
            &EigenConfig::default(),
            &fb,
            &mut log,
        )
        .unwrap();
        assert_eq!(log.events.last().unwrap().rung, FallbackRung::Dense);
        assert!(log.events.last().unwrap().succeeded);
        assert!(dec.values[0].abs() < 1e-8, "ring kernel eigenvalue");
    }

    #[test]
    fn exhausted_ladder_returns_last_numerical_error() {
        let a = ring_laplacian(30);
        let fb = FallbackConfig {
            inject_failures: 4,
            ..FallbackConfig::default()
        };
        let mut log = RecoveryLog::new();
        let err = sym_eigs_recovering(
            &a,
            2,
            Which::Smallest,
            &EigenConfig::default(),
            &fb,
            &mut log,
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::NotConverged { .. }));
        assert_eq!(log.events.len(), 4);
        assert!(log.events.iter().all(|e| !e.succeeded));
    }

    #[test]
    fn structural_errors_do_not_retry() {
        let a = ring_laplacian(10);
        let mut log = RecoveryLog::new();
        // nev > n is structural: must fail once, not climb the ladder.
        let err = sym_eigs_recovering(
            &a,
            11,
            Which::Smallest,
            &EigenConfig::default(),
            &FallbackConfig::default(),
            &mut log,
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
        assert_eq!(log.events.len(), 1);
    }

    #[test]
    fn dense_rung_gating() {
        let fb = FallbackConfig {
            dense_threshold: 8,
            always_dense_last_resort: false,
            inject_failures: 4,
            ..FallbackConfig::default()
        };
        let a = ring_laplacian(30);
        let mut log = RecoveryLog::new();
        // Dense is gated off (30 > 8, no last resort): ladder has 3 rungs.
        let err = sym_eigs_recovering(
            &a,
            2,
            Which::Smallest,
            &EigenConfig::default(),
            &fb,
            &mut log,
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::NotConverged { .. }));
        assert_eq!(log.events.len(), 3);
    }

    #[test]
    fn recovery_log_round_trips_through_serde() {
        let mut log = RecoveryLog::new();
        log.record(FallbackRung::Baseline, false, "x");
        log.record(FallbackRung::Dense, true, "");
        let node = serde::Serialize::to_node(&log);
        let back: RecoveryLog = serde::Deserialize::from_node(&node).unwrap();
        assert_eq!(back.events.len(), 2);
        assert_eq!(back.events[0].rung, FallbackRung::Baseline);
        assert!(back.events[1].succeeded);
    }
}
