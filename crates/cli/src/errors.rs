//! CLI error classification: every failure carries a class (mapped to a
//! distinct exit code) and the full `source()` chain of the underlying
//! error, so `error: ...` output explains *why*, not just *what*.

use roadpart::RoadpartError;
use std::fmt;

/// Exit code for configuration and usage errors.
pub const EXIT_CONFIG: u8 = 2;
/// Exit code for data errors (missing, unreadable, or unrepairable input).
pub const EXIT_DATA: u8 = 3;
/// Exit code for numerical errors (eigensolver, clustering, cuts).
pub const EXIT_NUMERICAL: u8 = 4;
/// Exit code for a blown epoch deadline under `--deadline fail`.
pub const EXIT_DEADLINE: u8 = 5;
/// Exit code for quarantine overflow (every update of an epoch dropped).
pub const EXIT_QUARANTINE: u8 = 6;
/// Exit code for an unreachable origin–destination query (`serve`).
pub const EXIT_NOROUTE: u8 = 7;
/// The failure class of a CLI error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad flags, bad values, impossible configuration.
    Config,
    /// Input files or input data the pipeline cannot use.
    Data,
    /// The mathematics failed after every recovery attempt.
    Numerical,
    /// A streaming epoch blew its wall-clock budget in fail mode.
    Deadline,
    /// Source quarantine dropped every update offered in an epoch.
    Quarantine,
    /// A serve query's destination is unreachable from its origin.
    NoRoute,
}

/// A classified CLI failure with its formatted cause chain.
#[derive(Debug)]
pub struct CliError {
    /// Failure class, selecting the exit code.
    pub kind: ErrorKind,
    /// Top-level message, already including any cause lines.
    pub message: String,
}

impl CliError {
    /// A configuration/usage error (exit code 2).
    pub fn config(message: impl Into<String>) -> Self {
        Self {
            kind: ErrorKind::Config,
            message: message.into(),
        }
    }

    /// A data error (exit code 3).
    pub fn data(message: impl Into<String>) -> Self {
        Self {
            kind: ErrorKind::Data,
            message: message.into(),
        }
    }

    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self.kind {
            ErrorKind::Config => EXIT_CONFIG,
            ErrorKind::Data => EXIT_DATA,
            ErrorKind::Numerical => EXIT_NUMERICAL,
            ErrorKind::Deadline => EXIT_DEADLINE,
            ErrorKind::Quarantine => EXIT_QUARANTINE,
            ErrorKind::NoRoute => EXIT_NOROUTE,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {}", self.message)
    }
}

/// Formats an error followed by its full `source()` chain, one cause per
/// indented line.
pub fn with_causes(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut src = err.source();
    while let Some(cause) = src {
        out.push_str("\n  caused by: ");
        out.push_str(&cause.to_string());
        src = cause.source();
    }
    out
}

impl From<RoadpartError> for CliError {
    fn from(err: RoadpartError) -> Self {
        Self::from_framework(&err)
    }
}

impl From<roadpart_cut::CutError> for CliError {
    fn from(err: roadpart_cut::CutError) -> Self {
        Self {
            kind: ErrorKind::Numerical,
            message: with_causes(&err),
        }
    }
}

impl From<roadpart_net::NetError> for CliError {
    fn from(err: roadpart_net::NetError) -> Self {
        Self {
            kind: ErrorKind::Data,
            message: with_causes(&err),
        }
    }
}

impl From<roadpart_serve::ServeError> for CliError {
    fn from(err: roadpart_serve::ServeError) -> Self {
        use roadpart_serve::ServeError as QE;
        let kind = match &err {
            // The typed no-route outcome gets its own exit code so
            // scripted callers can distinguish "no path exists" from a
            // broken invocation — it is never a panic or an infinite cost.
            QE::NoRoute { .. } => ErrorKind::NoRoute,
            QE::InvalidQuery { .. } => ErrorKind::Config,
            QE::InvalidCost { .. } | QE::SnapshotMismatch { .. } | QE::TooLarge { .. } => {
                ErrorKind::Data
            }
            QE::Internal(_) => ErrorKind::Numerical,
        };
        Self {
            kind,
            message: with_causes(&err),
        }
    }
}

impl From<roadpart_stream::StreamError> for CliError {
    fn from(err: roadpart_stream::StreamError) -> Self {
        use roadpart_stream::StreamError as SE;
        let kind = match &err {
            SE::InvalidConfig(_) => ErrorKind::Config,
            SE::InvalidUpdate(_) => ErrorKind::Data,
            SE::DeadlineExceeded { .. } => ErrorKind::Deadline,
            SE::QuarantineOverflow { .. } => ErrorKind::Quarantine,
            SE::Framework(inner) => return CliError::from_framework(inner),
        };
        Self {
            kind,
            message: with_causes(&err),
        }
    }
}

impl CliError {
    /// Classifies a wrapped framework error without consuming its wrapper.
    fn from_framework(err: &RoadpartError) -> Self {
        let kind = match err {
            RoadpartError::InvalidConfig(_) => ErrorKind::Config,
            RoadpartError::InvalidData(_) | RoadpartError::Net(_) | RoadpartError::Traffic(_) => {
                ErrorKind::Data
            }
            RoadpartError::Linalg(_) | RoadpartError::Cut(_) | RoadpartError::Cluster(_) => {
                ErrorKind::Numerical
            }
        };
        Self {
            kind,
            message: with_causes(err),
        }
    }
}

/// `Args` and other plain-string failures are usage errors.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::config(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_exit_codes() {
        let config: CliError = RoadpartError::InvalidConfig("bad k".into()).into();
        assert_eq!(config.exit_code(), EXIT_CONFIG);
        let data: CliError = RoadpartError::InvalidData("NaN density".into()).into();
        assert_eq!(data.exit_code(), EXIT_DATA);
        let numerical: CliError =
            RoadpartError::Linalg(roadpart_linalg::LinalgError::NonFinite { context: "test" })
                .into();
        assert_eq!(numerical.exit_code(), EXIT_NUMERICAL);
        let usage: CliError = String::from("missing flag").into();
        assert_eq!(usage.exit_code(), EXIT_CONFIG);
    }

    #[test]
    fn stream_failures_get_distinct_exit_codes() {
        use roadpart_stream::StreamError as SE;
        let deadline: CliError = SE::DeadlineExceeded {
            budget_ms: 10.0,
            elapsed_ms: 25.0,
        }
        .into();
        assert_eq!(deadline.kind, ErrorKind::Deadline);
        assert_eq!(deadline.exit_code(), EXIT_DEADLINE);
        assert!(format!("{deadline}").contains("deadline exceeded"));

        let quarantine: CliError = SE::QuarantineOverflow {
            sources: 2,
            dropped: 7,
        }
        .into();
        assert_eq!(quarantine.kind, ErrorKind::Quarantine);
        assert_eq!(quarantine.exit_code(), EXIT_QUARANTINE);
        assert!(format!("{quarantine}").contains("quarantine overflow"));

        let numerical: CliError = SE::Framework(RoadpartError::Linalg(
            roadpart_linalg::LinalgError::NotConverged {
                iterations: 3,
                context: "Lanczos",
            },
        ))
        .into();
        assert_eq!(
            numerical.exit_code(),
            EXIT_NUMERICAL,
            "wrapped solver errors keep code 4"
        );
    }

    #[test]
    fn serve_failures_map_to_typed_exit_codes() {
        use roadpart_net::SegmentId;
        use roadpart_serve::ServeError as QE;
        let no_route: CliError = QE::NoRoute {
            from: SegmentId(3),
            to: SegmentId(9),
        }
        .into();
        assert_eq!(no_route.kind, ErrorKind::NoRoute);
        assert_eq!(no_route.exit_code(), EXIT_NOROUTE);
        assert!(format!("{no_route}").contains("no route"));

        let invalid: CliError = QE::InvalidQuery {
            segment: SegmentId(99),
            segments: 10,
        }
        .into();
        assert_eq!(invalid.exit_code(), EXIT_CONFIG);

        let internal: CliError = QE::Internal("predecessor chain broken").into();
        assert_eq!(internal.exit_code(), EXIT_NUMERICAL);
    }

    #[test]
    fn cause_chain_is_printed() {
        let err = RoadpartError::Cut(roadpart_cut::CutError::Linalg(
            roadpart_linalg::LinalgError::NotConverged {
                iterations: 9,
                context: "Lanczos",
            },
        ));
        let cli: CliError = err.into();
        let text = format!("{cli}");
        assert!(text.starts_with("error: "), "{text}");
        assert_eq!(text.matches("caused by:").count(), 2, "{text}");
        assert!(text.contains("Lanczos"), "{text}");
    }
}
