//! The CLI commands: generate, partition, metrics, select-k, stream, serve.

use crate::args::Args;
use crate::errors::{with_causes, CliError};
use roadpart::prelude::*;
use roadpart_net::{geojson, io, RoadGraph, RoadNetwork};
use std::fs::File;
use std::io::{BufRead, BufReader, Write};

/// CLI-level result: classified errors with cause chains.
type CliResult<T> = std::result::Result<T, CliError>;

/// Top-level usage text.
pub const USAGE: &str = "\
roadpart — congestion-based spatial partitioning of urban road networks

USAGE:
  roadpart generate  --preset <d1|m1|m2|m3> [--scale F] [--seed N]
                     --out <network file> [--densities <densities file>]
  roadpart partition --net <network file> --k N [--scheme <ag|asg|ng|nsg|jg>]
                     [--densities <densities file>] [--seed N] [--shards N]
                     [--labels <out labels>] [--geojson <out geojson>]
                     [--policy <clamp|strict>] [--attempts N]
                     [--report <out report json>]
  roadpart metrics   --net <network file> --labels <labels file>
                     [--densities <densities file>]
  roadpart select-k  --net <network file> [--densities F] [--kmax N]
                     [--scheme <ag|asg|ng|nsg>] [--seed N]
  roadpart stream    --preset <d1|m1|m2|m3> [--scale F] [--seed N] [--k N]
                     [--epochs N] [--aggregate <latest|window:N|ewma:A>]
                     [--warm <on|off>] [--log <out json>]
                     [--scenario <capacity-drop|blockade|rush-hour|moving-hotspot>]
                     [--budget-ms F] [--deadline <degrade|fail>] [--retries N]
  roadpart serve     --preset <d1|m1|m2|m3> [--scale F] [--seed N] [--k N]
                     [--scheme <ag|asg|ng|nsg>] [--cost <time|distance|hops>]
                     [--threads N] [--from SEG --to SEG | --queries N]

Files: networks use the roadpart text format; densities and labels are one
value per line in segment order.

partition runs under a fault-tolerant supervisor: anomalous densities are
sanitized per --policy (clamp repairs and records, strict fails fast),
transient solver failures climb a fallback ladder and rotate seeds for up
to --attempts tries, and supergraph schemes degrade to their direct
counterpart when mining fails. --report writes the machine-readable run
report (attempts, repairs, recovery rungs, timings) as JSON. --shards N
(N > 1) switches to the divide-and-conquer mode: the network is split into
N geometric shards (disconnected components are never merged into one
shard), each shard is partitioned in parallel, the shard results are
condensed and cut globally into k, and the seams are refined; a shard
whose solve keeps failing degrades the run back to the flat pipeline.

stream replays the preset's simulated density trace through the online
repartitioning engine: each epoch it aggregates the feed, probes drift, and
either serves on (no-op), refreshes regions, or rebuilds globally with a
warm-started spectral solve. --log writes the per-epoch report log as JSON.
--scenario overlays a named disruption (capacity drop, blockade, rush-hour
surge, moving hotspot) on the trace before it reaches the engine.
--budget-ms puts a wall-clock deadline on each epoch; when it is blown the
engine degrades down the ladder global -> regional -> no-op (--deadline
degrade, default) or fails the run (--deadline fail). --retries bounds the
seed-rotating retries per ladder rung. Each epoch line carries the engine
health (healthy / degraded / quarantining).

serve partitions the preset network, builds per-partition boundary-node
distance oracles on a --threads pool, and answers shortest-path queries on
the segment-transition graph. --from/--to answers one query and prints the
exact route; otherwise --queries random origin-destination pairs run as a
batch and the throughput/latency statistics are printed. An unreachable
--from/--to pair exits with the dedicated no-route code, never a panic.

Exit codes: 0 ok, 2 config/usage error, 3 data error, 4 numerical error,
5 epoch deadline exceeded (--deadline fail), 6 quarantine overflow,
7 no route between --from and --to.";

/// Builds the named preset dataset.
fn build_dataset(preset: &str, scale: f64, seed: u64) -> CliResult<Dataset> {
    let built = match preset.to_ascii_lowercase().as_str() {
        "d1" => roadpart::datasets::d1(scale, seed),
        "m1" => roadpart::datasets::melbourne(Melbourne::M1, scale, seed),
        "m2" => roadpart::datasets::melbourne(Melbourne::M2, scale, seed),
        "m3" => roadpart::datasets::melbourne(Melbourne::M3, scale, seed),
        other => {
            return Err(CliError::config(format!(
                "unknown preset '{other}' (use d1|m1|m2|m3)"
            )))
        }
    };
    Ok(built?)
}

fn load_network(path: &str) -> CliResult<RoadNetwork> {
    let file = File::open(path).map_err(|e| CliError::data(format!("cannot open {path}: {e}")))?;
    io::read_network(file)
        .map_err(|e| CliError::data(format!("cannot parse {path}: {}", with_causes(&e))))
}

fn load_column<T: std::str::FromStr>(path: &str, what: &str) -> CliResult<Vec<T>> {
    let file = File::open(path).map_err(|e| CliError::data(format!("cannot open {path}: {e}")))?;
    let mut out = Vec::new();
    for (no, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| CliError::data(format!("{path}: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(
            trimmed.parse().map_err(|_| {
                CliError::data(format!("{path}:{}: bad {what} '{trimmed}'", no + 1))
            })?,
        );
    }
    Ok(out)
}

fn write_column<T: std::fmt::Display>(path: &str, values: &[T]) -> CliResult<()> {
    let mut f =
        File::create(path).map_err(|e| CliError::data(format!("cannot create {path}: {e}")))?;
    for v in values {
        writeln!(f, "{v}").map_err(|e| CliError::data(format!("{path}: {e}")))?;
    }
    Ok(())
}

/// Densities: explicit file, or the ones stored in the network.
fn resolve_densities(args: &Args, net: &RoadNetwork) -> CliResult<Vec<f64>> {
    match args.optional("densities") {
        Some(path) => {
            let d: Vec<f64> = load_column(path, "density")?;
            if d.len() != net.segment_count() {
                return Err(CliError::data(format!(
                    "{path}: {} densities for {} segments",
                    d.len(),
                    net.segment_count()
                )));
            }
            Ok(d)
        }
        None => Ok(net.densities()),
    }
}

fn parse_scheme(name: &str) -> CliResult<Scheme> {
    match name.to_ascii_lowercase().as_str() {
        "ag" => Ok(Scheme::AG),
        "asg" => Ok(Scheme::ASG),
        "ng" => Ok(Scheme::NG),
        "nsg" => Ok(Scheme::NSG),
        other => Err(CliError::config(format!(
            "unknown scheme '{other}' (use ag|asg|ng|nsg)"
        ))),
    }
}

fn parse_policy(args: &Args) -> CliResult<SanitizePolicy> {
    match args.optional("policy") {
        None => Ok(SanitizePolicy::ClampAndWarn),
        Some(raw) => match raw.to_ascii_lowercase().as_str() {
            "clamp" | "clamp-and-warn" => Ok(SanitizePolicy::ClampAndWarn),
            "strict" => Ok(SanitizePolicy::Strict),
            other => Err(CliError::config(format!(
                "unknown policy '{other}' (use clamp|strict)"
            ))),
        },
    }
}

/// `roadpart generate`: synthesize a network + simulated traffic densities.
pub fn generate(argv: &[String]) -> CliResult<()> {
    let args = Args::parse(argv)?;
    let preset = args.required("preset")?;
    let scale: f64 = args.get_or("scale", 0.5)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = args.required("out")?;

    let dataset = build_dataset(preset, scale, seed)?;

    // Persist the network with the evaluation-step densities baked in.
    let mut net = dataset.network.clone();
    net.set_densities(dataset.eval_densities())
        .map_err(|e| CliError::data(with_causes(&e)))?;
    let f = File::create(out).map_err(|e| CliError::data(format!("cannot create {out}: {e}")))?;
    io::write_network(&net, f).map_err(|e| CliError::data(with_causes(&e)))?;
    println!(
        "wrote {out}: {} intersections, {} segments ({} preset at scale {scale})",
        net.intersection_count(),
        net.segment_count(),
        dataset.name
    );
    if let Some(dpath) = args.optional("densities") {
        write_column(dpath, dataset.eval_densities())?;
        println!(
            "wrote {dpath}: densities at evaluation step t = {}",
            dataset.eval_step
        );
    }
    Ok(())
}

/// `roadpart partition`: run the supervised framework and export labels /
/// GeoJSON / the machine-readable run report.
pub fn partition(argv: &[String]) -> CliResult<()> {
    let args = Args::parse(argv)?;
    let net = load_network(args.required("net")?)?;
    let k: usize = args.get_or("k", 0)?;
    if k < 1 {
        return Err(CliError::config("--k must be at least 1"));
    }
    let seed: u64 = args.get_or("seed", 42)?;
    let densities = resolve_densities(&args, &net)?;
    let scheme_name = args.optional("scheme").unwrap_or("asg");

    let (labels, k_out) = if scheme_name.eq_ignore_ascii_case("jg") {
        let mut graph = RoadGraph::from_network(&net)?;
        graph.set_features(densities.clone())?;
        let p = roadpart::jg_partition(&graph, k, &JgConfig::default())?;
        (p.labels().to_vec(), p.k())
    } else {
        let scheme = parse_scheme(scheme_name)?;
        let shards: usize = args.get_or("shards", 1)?;
        let pipeline = PipelineConfig {
            scheme,
            k,
            framework: FrameworkConfig::default().with_seed(seed),
            mode: PartitionMode::Flat,
        }
        .with_shards(shards);
        let mut sup = SupervisorConfig::new(pipeline);
        sup.policy = parse_policy(&args)?;
        sup.max_attempts = args.get_or("attempts", 3)?;
        let run = run_supervised(&net, &densities, &sup)?;
        let result = &run.result;
        let report = &run.report;

        println!(
            "timings: module1 {:?} | module2 {:?} | module3 {:?}",
            result.timings.module1, result.timings.module2, result.timings.module3
        );
        if let Some(order) = result.supergraph_order {
            println!(
                "supergraph: {} supernodes from {} segments",
                order,
                net.segment_count()
            );
        }
        if let Some(sharded) = &result.sharded {
            println!(
                "sharded: {} shard(s), fine k' = {}, {} boundary move(s){}",
                sharded.shard_sizes.len(),
                sharded.fine_k,
                sharded.boundary_moves,
                if sharded.flat_fallback {
                    " — degraded to the flat pipeline"
                } else {
                    ""
                }
            );
        }
        if !report.validation.repairs.is_empty() {
            println!(
                "sanitized: repaired {} anomalous densities",
                report.validation.repairs.len()
            );
        }
        for warning in &report.validation.warnings {
            println!("warning: {warning}");
        }
        if report.recoveries.failures() > 0 {
            println!(
                "recovered: eigensolver needed {} fallback rung(s)",
                report.recoveries.failures()
            );
        }
        if report.degraded {
            println!(
                "degraded: {} fell back to {}",
                report.requested_scheme.name(),
                report.final_scheme.map_or("?", Scheme::name)
            );
        }
        if report.attempts.len() > 1 {
            println!("attempts: {} (seed rotation)", report.attempts.len());
        }
        if let Some(path) = args.optional("report") {
            let json = serde_json::to_string_pretty(&run.report)
                .map_err(|e| CliError::data(format!("cannot serialize report: {e}")))?;
            std::fs::write(path, json + "\n")
                .map_err(|e| CliError::data(format!("cannot write {path}: {e}")))?;
            println!("wrote {path}");
        }
        (result.partition.labels().to_vec(), result.partition.k())
    };
    println!("partitioned into {k_out} connected sub-networks");

    if let Some(path) = args.optional("labels") {
        write_column(path, &labels)?;
        println!("wrote {path}");
    }
    if let Some(path) = args.optional("geojson") {
        let f =
            File::create(path).map_err(|e| CliError::data(format!("cannot create {path}: {e}")))?;
        geojson::write_geojson(&net, Some(&labels), Some(&densities), f)
            .map_err(|e| CliError::data(with_causes(&e)))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Parses `latest`, `window:N`, or `ewma:A` into an [`AggregateKind`].
fn parse_aggregate(raw: &str) -> CliResult<roadpart_stream::AggregateKind> {
    use roadpart_stream::AggregateKind;
    let lower = raw.to_ascii_lowercase();
    if lower == "latest" {
        return Ok(AggregateKind::Latest);
    }
    if let Some(w) = lower.strip_prefix("window:") {
        let window: usize = w
            .parse()
            .map_err(|_| CliError::config(format!("bad window '{w}' in --aggregate")))?;
        return Ok(AggregateKind::WindowMean(window));
    }
    if let Some(a) = lower.strip_prefix("ewma:") {
        let alpha: f64 = a
            .parse()
            .map_err(|_| CliError::config(format!("bad alpha '{a}' in --aggregate")))?;
        return Ok(AggregateKind::Ewma(alpha));
    }
    Err(CliError::config(format!(
        "unknown aggregate '{raw}' (use latest|window:N|ewma:A)"
    )))
}

/// `roadpart stream`: replay a simulated density trace through the online
/// repartitioning engine, one report line per epoch.
pub fn stream(argv: &[String]) -> CliResult<()> {
    use roadpart_stream::{DeadlineMode, EngineConfig, EpochAction, StreamEngine, StreamLog};
    use roadpart_traffic::Scenario;

    let args = Args::parse(argv)?;
    let preset = args.optional("preset").unwrap_or("d1");
    let scale: f64 = args.get_or("scale", 0.35)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let k: usize = args.get_or("k", 4)?;
    let epochs: usize = args.get_or("epochs", 10)?;
    if epochs == 0 {
        return Err(CliError::config("--epochs must be at least 1"));
    }
    let warm = match args.optional("warm").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::config(format!(
                "bad --warm '{other}' (use on|off)"
            )))
        }
    };

    let dataset = build_dataset(preset, scale, seed)?;
    // Overlay the requested disruption scenario on the simulated trace.
    let history = match args.optional("scenario") {
        None => dataset.history.clone(),
        Some(name) => {
            let suite = Scenario::standard_suite(&dataset.network);
            let scenario = suite
                .iter()
                .find(|s| s.name == name.to_ascii_lowercase())
                .ok_or_else(|| {
                    let known: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
                    CliError::config(format!(
                        "unknown scenario '{name}' (use {})",
                        known.join("|")
                    ))
                })?;
            println!(
                "scenario: {} ({} events)",
                scenario.name,
                scenario.events.len()
            );
            scenario.apply_history(&dataset.network, &dataset.history)
        }
    };
    let steps = history.len();
    println!(
        "{} at scale {scale}: {} segments, {} simulated steps -> {epochs} epochs",
        dataset.name,
        dataset.network.segment_count(),
        steps
    );

    let mut graph = RoadGraph::from_network(&dataset.network)?;
    graph.set_features(history.at(0).to_vec())?;
    let mut cfg = EngineConfig::new(k).with_seed(seed);
    cfg.warm_start = warm;
    if let Some(raw) = args.optional("aggregate") {
        cfg.aggregate = parse_aggregate(raw)?;
    }
    if args.optional("budget-ms").is_some() {
        let budget: f64 = args.get_or("budget-ms", 0.0)?;
        cfg.resilience.epoch_budget_ms = Some(budget);
    }
    cfg.resilience.deadline_mode = match args.optional("deadline").unwrap_or("degrade") {
        "degrade" => DeadlineMode::Degrade,
        "fail" => DeadlineMode::Fail,
        other => {
            return Err(CliError::config(format!(
                "bad --deadline '{other}' (use degrade|fail)"
            )))
        }
    };
    cfg.resilience.max_retries = args.get_or("retries", cfg.resilience.max_retries)?;
    let mut engine = StreamEngine::new(graph, cfg)?;
    let store = engine.store();
    println!(
        "initial partition: version {} serving k = {}",
        store.read().version,
        store.read().k
    );

    // Replay the remaining trace in equal epoch chunks.
    let steps_per_epoch = ((steps - 1) / epochs).max(1);
    let mut log = StreamLog::new();
    let mut t = 1;
    for _ in 0..epochs {
        if t >= steps {
            break;
        }
        let end = (t + steps_per_epoch).min(steps);
        for step in t..end {
            engine.ingest(history.at(step))?;
        }
        t = end;
        let report = engine.run_epoch()?;
        let action = match report.action {
            EpochAction::NoOp => "no-op",
            EpochAction::Regional => "regional",
            EpochAction::Global => "global",
        };
        let mut notes = String::new();
        if report.warm_started {
            notes.push_str(" (warm)");
        }
        if report.resilience.degraded {
            let intended = match report.intended {
                EpochAction::NoOp => "no-op",
                EpochAction::Regional => "regional",
                EpochAction::Global => "global",
            };
            notes.push_str(&format!(" (degraded from {intended})"));
        }
        if report.resilience.attempts.len() > 1 {
            notes.push_str(&format!(" ({} attempts)", report.resilience.attempts.len()));
        }
        println!(
            "epoch {:>3}: {action:<8} {:<12} | divergence {:.3} retention {:.2} | \
             v{} k = {} | {:.1} ms{notes}",
            report.epoch,
            report.health.label(),
            report.probe.max_divergence,
            report.probe.retention(),
            report.version,
            report.k,
            report.elapsed_ms,
        );
        log.push(report);
    }

    let (noop, regional, global) = log.action_counts();
    let (healthy, degraded, quarantining) = log.health_counts();
    println!(
        "{} epochs: {noop} no-op, {regional} regional, {global} global | \
         health: {healthy} healthy, {degraded} degraded, {quarantining} quarantining | \
         final version {} | {:.1} ms total",
        log.len(),
        store.read().version,
        log.total_ms()
    );
    if let Some(path) = args.optional("log") {
        let json = serde_json::to_string_pretty(&log)
            .map_err(|e| CliError::data(format!("cannot serialize stream log: {e}")))?;
        std::fs::write(path, json + "\n")
            .map_err(|e| CliError::data(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// SplitMix64 step: a deterministic stateless mixer for OD sampling, so
/// `serve --queries` needs no RNG dependency and replays bit-identically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_cost_model(raw: &str) -> CliResult<roadpart_serve::CostModel> {
    use roadpart_serve::CostModel;
    match raw.to_ascii_lowercase().as_str() {
        "time" => Ok(CostModel::FreeFlowTime),
        "distance" => Ok(CostModel::Distance),
        "hops" => Ok(CostModel::Hops),
        other => Err(CliError::config(format!(
            "unknown cost model '{other}' (use time|distance|hops)"
        ))),
    }
}

/// `roadpart serve`: partition the preset network, build boundary-node
/// oracles, and answer shortest-path queries exactly.
///
/// # Errors
/// Classified [`CliError`]s: usage problems exit 2, partitioning failures
/// keep their data/numerical codes, and an unreachable `--from`/`--to`
/// pair exits with the dedicated no-route code 7.
pub fn serve(argv: &[String]) -> CliResult<()> {
    use roadpart_net::SegmentId;
    use roadpart_serve::{QueryBatch, QueryContext, QueryEngine, SegmentGraph};
    use roadpart_stream::PartitionStore;
    use std::sync::Arc;

    let args = Args::parse(argv)?;
    let preset = args.optional("preset").unwrap_or("d1");
    let scale: f64 = args.get_or("scale", 0.35)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let k: usize = args.get_or("k", 4)?;
    if k < 1 {
        return Err(CliError::config("--k must be at least 1"));
    }
    let threads: usize = args.get_or("threads", 1)?;
    if threads < 1 {
        return Err(CliError::config("--threads must be at least 1"));
    }
    let scheme = parse_scheme(args.optional("scheme").unwrap_or("ag"))?;
    let cost = parse_cost_model(args.optional("cost").unwrap_or("time"))?;

    let dataset = build_dataset(preset, scale, seed)?;
    let net = &dataset.network;
    let mut graph = RoadGraph::from_network(net)?;
    graph.set_features(dataset.eval_densities().to_vec())?;
    let cfg = FrameworkConfig::default().with_seed(seed);
    let out = roadpart::run_scheme(&graph, scheme, k, &cfg)?;
    let labels = out.partition.labels().to_vec();

    let routing = SegmentGraph::from_network(net, cost)?;
    let store = Arc::new(PartitionStore::new(labels, 0));
    let pool = roadpart_linalg::ThreadPool::new(threads);
    let engine = QueryEngine::new(routing, store, pool)?;
    let serving = engine.serving();
    println!(
        "{} at scale {scale}: {} segments in {} partitions, {} boundary nodes, \
         {} overlay edges (oracles built in {:.2} ms on {threads} thread(s))",
        dataset.name,
        net.segment_count(),
        serving.partition_count(),
        serving.boundary_count(),
        serving.overlay_edge_count(),
        serving.build_ms,
    );

    if let (Some(from_raw), Some(to_raw)) = (args.optional("from"), args.optional("to")) {
        let from: u32 = from_raw
            .parse()
            .map_err(|_| CliError::config(format!("bad --from segment '{from_raw}'")))?;
        let to: u32 = to_raw
            .parse()
            .map_err(|_| CliError::config(format!("bad --to segment '{to_raw}'")))?;
        let mut ctx = QueryContext::new();
        let resp = engine.query(SegmentId(from), SegmentId(to), &mut ctx)?;
        println!(
            "route {from} -> {to}: cost {:.3}, {} segments, {} settled, \
             {} boundary hop(s){} (snapshot v{})",
            resp.cost,
            resp.path.len(),
            resp.settled,
            resp.boundary_hops,
            if resp.used_overlay {
                " via boundary overlay"
            } else {
                " in-cell"
            },
            resp.version,
        );
        let shown = resp.path.len().min(16);
        let ids: Vec<String> = resp.path[..shown].iter().map(|s| s.0.to_string()).collect();
        let ellipsis = if resp.path.len() > shown { " ..." } else { "" };
        println!("path: {}{ellipsis}", ids.join(" -> "));
        return Ok(());
    }

    let queries: usize = args.get_or("queries", 200)?;
    if queries == 0 {
        return Err(CliError::config("--queries must be at least 1"));
    }
    let n = net.segment_count() as u64;
    let mut state = seed ^ 0x5EED_0D0D_CAFE_F00D;
    let pairs: Vec<(SegmentId, SegmentId)> = (0..queries)
        .map(|_| {
            let s = (splitmix64(&mut state) % n) as u32;
            let t = (splitmix64(&mut state) % n) as u32;
            (SegmentId(s), SegmentId(t))
        })
        .collect();
    let report = engine.run_batch(&QueryBatch::new(pairs))?;
    println!(
        "{} queries on {threads} thread(s): {} routed, {} no-route | \
         {:.0} qps | p50 {:.1} us, p99 {:.1} us, max {:.1} us | \
         mean settled {:.0} | snapshot v{}",
        report.queries,
        report.ok,
        report.no_route,
        report.qps,
        report.p50_us,
        report.p99_us,
        report.max_us,
        report.mean_settled,
        report.version_hi,
    );
    Ok(())
}

/// `roadpart metrics`: evaluate an existing labeling.
pub fn metrics(argv: &[String]) -> CliResult<()> {
    let args = Args::parse(argv)?;
    let net = load_network(args.required("net")?)?;
    let densities = resolve_densities(&args, &net)?;
    let labels: Vec<usize> = load_column(args.required("labels")?, "label")?;
    if labels.len() != net.segment_count() {
        return Err(CliError::data(format!(
            "{} labels for {} segments",
            labels.len(),
            net.segment_count()
        )));
    }
    let mut graph = RoadGraph::from_network(&net)?;
    graph.set_features(densities)?;
    let affinity = roadpart_cut::gaussian_affinity(graph.adjacency(), graph.features())?;
    let dense = roadpart_cut::Partition::from_labels(&labels);
    let rep = QualityReport::compute(&affinity, graph.features(), dense.labels());
    println!("k          : {}", rep.k);
    println!("inter      : {:.6}  (higher better)", rep.inter);
    println!("intra      : {:.6}  (lower better)", rep.intra);
    println!("GDBI       : {:.6}  (lower better)", rep.gdbi);
    println!("ANS        : {:.6}  (lower better)", rep.ans);
    println!("alpha-cut  : {:.6}  (lower better)", rep.alpha_cut);
    println!("ncut       : {:.6}  (lower better)", rep.ncut);
    println!("modularity : {:.6}  (higher better)", rep.modularity);
    Ok(())
}

/// `roadpart select-k`: sweep k and report the ANS-optimal choice.
pub fn select_k(argv: &[String]) -> CliResult<()> {
    let args = Args::parse(argv)?;
    let net = load_network(args.required("net")?)?;
    let densities = resolve_densities(&args, &net)?;
    let kmax: usize = args.get_or("kmax", 12)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let scheme = parse_scheme(args.optional("scheme").unwrap_or("asg"))?;
    let mut graph = RoadGraph::from_network(&net)?;
    graph.set_features(densities)?;
    let cfg = FrameworkConfig::default().with_seed(seed);
    let sel = roadpart::select_k(&graph, scheme, 2..=kmax.max(2), &cfg)?;
    println!("{:>4} {:>10} {:>10}", "k", "ANS", "GDBI");
    for c in &sel.sweep {
        println!("{:>4} {:>10.4} {:>10.4}", c.k, c.report.ans, c.report.gdbi);
    }
    println!(
        "\nANS-optimal k = {} (ANS {:.4}); local-minimum candidates: {:?}",
        sel.best_k, sel.best_ans, sel.candidates
    );
    Ok(())
}
