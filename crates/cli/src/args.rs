//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--flag value` pairs.
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses alternating `--flag value` tokens.
    ///
    /// # Errors
    /// Returns a message for a dangling flag or a token that is not a flag.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, found '{flag}'"));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} is missing its value"));
            };
            values.insert(name.to_string(), value.clone());
        }
        Ok(Self { values })
    }

    /// Required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Typed flag with a default.
    ///
    /// # Errors
    /// Returns a message when the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{raw}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&argv(&["--k", "6", "--scheme", "asg"])).unwrap();
        assert_eq!(a.required("k").unwrap(), "6");
        assert_eq!(a.get_or("k", 0usize).unwrap(), 6);
        assert_eq!(a.optional("scheme"), Some("asg"));
        assert_eq!(a.optional("absent"), None);
        assert_eq!(a.get_or("absent", 3usize).unwrap(), 3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&argv(&["k", "6"])).is_err());
        assert!(Args::parse(&argv(&["--k"])).is_err());
        let a = Args::parse(&argv(&["--k", "x"])).unwrap();
        assert!(a.get_or("k", 0usize).is_err());
        assert!(a.required("missing").is_err());
    }
}
