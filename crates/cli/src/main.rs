//! `roadpart` — command-line interface for congestion-based spatial
//! partitioning of urban road networks (Anwar et al., EDBT 2014).
//!
//! ```text
//! roadpart generate --preset d1 --scale 0.5 --seed 42 --out city.net --densities city.densities
//! roadpart partition --net city.net --densities city.densities --k 6 \
//!                    --scheme asg --labels out.labels --geojson out.geojson \
//!                    --policy clamp --report run-report.json
//! roadpart metrics   --net city.net --densities city.densities --labels out.labels
//! roadpart select-k  --net city.net --densities city.densities --kmax 12 --scheme asg
//! roadpart stream    --preset d1 --scale 0.35 --k 4 --epochs 10 --log stream-log.json
//! roadpart serve     --preset d1 --scale 0.35 --k 4 --threads 4 --queries 500
//! ```
//!
//! Exit codes distinguish the failure class so scripts can react:
//! `0` success, `2` configuration/usage error, `3` data error (unreadable or
//! unrepairable input), `4` numerical error (solver and clustering
//! failures), `5` epoch deadline exceeded (`stream --deadline fail`),
//! `6` quarantine overflow (every update of a streaming epoch dropped),
//! `7` no route between the requested `serve --from`/`--to` pair.

mod args;
mod commands;
mod errors;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(errors::EXIT_CONFIG);
    };
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "partition" => commands::partition(rest),
        "metrics" => commands::metrics(rest),
        "select-k" => commands::select_k(rest),
        "stream" => commands::stream(rest),
        "serve" => commands::serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(errors::CliError::config(format!(
            "unknown command '{other}'\n\n{}",
            commands::USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(err.exit_code())
        }
    }
}
