//! Connected components, optionally constrained to same-cluster links.
//!
//! §4.3.1: "Nodes v_i and v_j are considered as directly connected if they
//! are grouped in the same cluster by k-means and are adjacent as well in
//! the actual road network" — supernodes are the connected components of
//! that constrained graph, found with "the standard FIFO based connected
//! components identification algorithm" (BFS).

use crate::error::{ClusterError, Result};
use roadpart_linalg::CsrMatrix;
use std::collections::VecDeque;

/// Labels each node with its component id (dense, `0..n_components`), where
/// two adjacent nodes are joined only if `labels[i] == labels[j]`.
///
/// Passing `None` for `labels` computes ordinary connected components.
///
/// # Errors
/// Returns [`ClusterError::InvalidInput`] if `labels` length mismatches the
/// adjacency dimension.
pub fn constrained_components(adj: &CsrMatrix, labels: Option<&[usize]>) -> Result<Vec<usize>> {
    let n = adj.dim();
    if let Some(l) = labels {
        if l.len() != n {
            return Err(ClusterError::InvalidInput(format!(
                "label vector length {} != graph order {n}",
                l.len()
            )));
        }
    }
    let same = |a: usize, b: usize| match labels {
        Some(l) => l[a] == l[b],
        None => true,
    };
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start);
        while let Some(i) = queue.pop_front() {
            let (cols, _) = adj.row(i);
            for &j in cols {
                if comp[j] == usize::MAX && same(i, j) {
                    comp[j] = next;
                    queue.push_back(j);
                }
            }
        }
        next += 1;
    }
    Ok(comp)
}

/// Number of constrained components (see [`constrained_components`]).
///
/// # Errors
/// Same conditions as [`constrained_components`].
pub fn count_components(adj: &CsrMatrix, labels: Option<&[usize]>) -> Result<usize> {
    let comp = constrained_components(adj, labels)?;
    Ok(comp.iter().copied().max().map_or(0, |m| m + 1))
}

/// Groups node indices by component id: `groups[c]` lists the members of
/// component `c`, in ascending node order.
pub fn component_groups(comp: &[usize]) -> Vec<Vec<usize>> {
    let n_comp = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups = vec![Vec::new(); n_comp];
    for (i, &c) in comp.iter().enumerate() {
        groups[c].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4.
    fn path5() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
            .unwrap()
    }

    #[test]
    fn unconstrained_connected_graph_is_one_component() {
        let comp = constrained_components(&path5(), None).unwrap();
        assert!(comp.iter().all(|&c| c == 0));
        assert_eq!(count_components(&path5(), None).unwrap(), 1);
    }

    #[test]
    fn labels_split_components() {
        // Labels: [0, 0, 1, 0, 0] -> components {0,1}, {2}, {3,4}.
        let labels = [0, 0, 1, 0, 0];
        let comp = constrained_components(&path5(), Some(&labels)).unwrap();
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[2]);
        assert_ne!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_eq!(count_components(&path5(), Some(&labels)).unwrap(), 3);
    }

    #[test]
    fn same_label_disconnected_nodes_stay_apart() {
        // Nodes 0 and 4 share a label but are separated by other labels.
        let labels = [0, 1, 1, 1, 0];
        let comp = constrained_components(&path5(), Some(&labels)).unwrap();
        assert_ne!(comp[0], comp[4]);
        assert_eq!(count_components(&path5(), Some(&labels)).unwrap(), 3);
    }

    #[test]
    fn groups_partition_the_nodes() {
        let labels = [0, 0, 1, 0, 0];
        let comp = constrained_components(&path5(), Some(&labels)).unwrap();
        let groups = component_groups(&comp);
        assert_eq!(groups.len(), 3);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        // Every node appears exactly once.
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let adj = CsrMatrix::from_triplets(3, &[]).unwrap();
        assert_eq!(count_components(&adj, None).unwrap(), 3);
    }

    #[test]
    fn label_length_validated() {
        assert!(constrained_components(&path5(), Some(&[0, 1])).is_err());
    }

    #[test]
    fn empty_graph() {
        let adj = CsrMatrix::from_triplets(0, &[]).unwrap();
        assert_eq!(count_components(&adj, None).unwrap(), 0);
        assert!(component_groups(&[]).is_empty());
    }
}
