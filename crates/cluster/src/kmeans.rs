//! General k-means (k-means++ / Lloyd) over row-vector points.
//!
//! Used by Algorithm 3 line 10: the row-normalized eigenvector matrix `Z` is
//! clustered into `k` groups. Initialization is randomized (k-means++), so
//! the partitioning pipeline runs it with an explicit seed and the
//! experiment harness reports medians over repeated executions, matching the
//! paper's 100-run protocol.

use crate::error::{ClusterError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use roadpart_linalg::par::{ThreadPool, DEFAULT_CHUNK};
use roadpart_linalg::{ord::max_by_f64_key, DenseMatrix};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Independent k-means++ restarts; the lowest-inertia run wins.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Relative center-movement tolerance for early convergence.
    pub tol: f64,
    /// Optional warm-start centroids (`k x d`) from a previous, nearby
    /// clustering (e.g. the last repartitioning epoch). When present and
    /// dimensionally consistent, the first restart runs Lloyd from these
    /// centers instead of k-means++ seeding — near-converged starts finish
    /// in a couple of iterations. The hint counts against `restarts`, so
    /// warm and cold configurations do the same number of runs; a stale or
    /// malformed hint is ignored.
    pub warm_start: Option<DenseMatrix>,
    /// Skip full distance scans for points whose Hamerly-style upper/lower
    /// bounds prove their assignment cannot have changed. The pruned pass
    /// is **bitwise identical** to the unpruned one by construction — a
    /// point is only skipped after its exact distance to its assigned
    /// center has been computed (the same value the full scan would have
    /// accumulated) and the strict bound comparison rules out every other
    /// center, including ties the full scan would break toward lower
    /// indices. Default: true; kept as a knob so differential tests can
    /// compare both paths.
    pub prune: bool,
    /// Thread pool for the assignment/update passes. Every reduction uses
    /// fixed chunk boundaries with an ordered merge (see
    /// `roadpart_linalg::par`), so results are bit-identical at any pool
    /// size. Default: `ROADPART_THREADS` with a serial fallback.
    pub pool: ThreadPool,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            restarts: 4,
            seed: 0,
            tol: 1e-9,
            warm_start: None,
            prune: true,
            pool: ThreadPool::from_env(),
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster index per row of the input matrix.
    pub assignments: Vec<usize>,
    /// Cluster centroids (`k x d`).
    pub centers: DenseMatrix,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

impl KMeans {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.rows()
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    // Explicit left-to-right accumulation: the audit's float-determinism
    // rule bans iterator reductions in hot-kernel code so the summation
    // order is visibly pinned (bitwise-stable under refactors).
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Squared distances from `p` to four centers at once — four interleaved
/// copies of [`sq_dist`]. Each lane keeps its own left-to-right accumulator
/// over the coordinate index, so lane `l` is bitwise equal to an
/// independent `sq_dist(p, c[l])` call; the blocking only buys instruction
/// level parallelism (four independent FMA chains instead of one), never a
/// different rounding. The exhaustive k-means scan walks centers in blocks
/// of four and compares lanes in ascending center order, keeping the
/// lowest-index tie-breaking of the scalar scan.
#[inline]
fn sq_dist4(p: &[f64], c: [&[f64]; 4]) -> [f64; 4] {
    let mut acc = [0.0f64; 4];
    for (j, &x) in p.iter().enumerate() {
        for l in 0..4 {
            let d = x - c[l][j];
            acc[l] += d * d;
        }
    }
    acc
}

/// Clusters the rows of `points` (`n x d`) into `k` groups.
///
/// # Errors
/// Returns [`ClusterError::BadClusterCount`] unless `1 <= k <= n`, and
/// [`ClusterError::InvalidInput`] on non-finite data.
pub fn kmeans(points: &DenseMatrix, k: usize, cfg: &KMeansConfig) -> Result<KMeans> {
    let n = points.rows();
    if k == 0 || k > n {
        return Err(ClusterError::BadClusterCount {
            requested: k,
            points: n,
        });
    }
    if points.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(ClusterError::InvalidInput(
            "k-means points must be finite".into(),
        ));
    }

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut best: Option<KMeans> = None;
    let consider = |run: KMeans, best: &mut Option<KMeans>| {
        if best.as_ref().map_or(true, |b| run.inertia < b.inertia) {
            *best = Some(run);
        }
    };
    let mut remaining = cfg.restarts.max(1);
    if let Some(warm) = usable_warm_start(cfg, k, points.cols()) {
        consider(lloyd(points, warm, cfg), &mut best);
        remaining -= 1;
    }
    for _ in 0..remaining {
        consider(single_run(points, k, cfg, &mut rng), &mut best);
    }
    // `restarts.max(1)` guarantees at least one run considered; the error
    // is a defensive fallback rather than a reachable state.
    let Some(mut best) = best else {
        return Err(ClusterError::InvalidInput(
            "k-means completed zero restarts".into(),
        ));
    };
    best.inertia = best.inertia.max(0.0);
    Ok(best)
}

/// The warm-start centers when they are safe to use: right shape, finite
/// entries. Anything else is silently ignored (the hint is an optimization,
/// never a contract).
fn usable_warm_start(cfg: &KMeansConfig, k: usize, d: usize) -> Option<DenseMatrix> {
    let w = cfg.warm_start.as_ref()?;
    if w.rows() == k && w.cols() == d && w.as_slice().iter().all(|v| v.is_finite()) {
        Some(w.clone())
    } else {
        None
    }
}

#[allow(clippy::needless_range_loop)] // index style keeps the math readable
fn single_run(points: &DenseMatrix, k: usize, cfg: &KMeansConfig, rng: &mut ChaCha8Rng) -> KMeans {
    let n = points.rows();
    let d = points.cols();

    // k-means++ seeding. The distance refreshes are elementwise, so the
    // chunked parallel passes are bit-identical to the serial loops.
    let mut centers = DenseMatrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centers.row_mut(0).copy_from_slice(points.row(first));
    let mut min_d2: Vec<f64> = vec![0.0; n];
    cfg.pool
        .for_each_chunk_mut(&mut min_d2, DEFAULT_CHUNK, |r, mc| {
            for (m, i) in mc.iter_mut().zip(r) {
                *m = sq_dist(points.row(i), centers.row(0));
            }
        });
    for c in 1..k {
        let mut total: f64 = 0.0;
        for &w in &min_d2 {
            total += w;
        }
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n) // all points coincide with chosen centers
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                if u < w {
                    pick = i;
                    break;
                }
                u -= w;
            }
            pick
        };
        centers.row_mut(c).copy_from_slice(points.row(chosen));
        let centers = &centers;
        cfg.pool
            .for_each_chunk_mut(&mut min_d2, DEFAULT_CHUNK, |r, mc| {
                for (m, i) in mc.iter_mut().zip(r) {
                    *m = m.min(sq_dist(points.row(i), centers.row(c)));
                }
            });
    }

    lloyd(points, centers, cfg)
}

/// Per-point state for the bound-pruned assignment pass.
///
/// `upper` bounds the distance (not squared) from the point to its assigned
/// center from above; `lower` bounds the distance to the *second-closest*
/// center from below. Both are maintained across iterations Hamerly-style:
/// after the centers move, `upper` grows by the assigned center's movement
/// and `lower` shrinks by the largest movement of any center.
#[derive(Clone, Copy)]
struct PointBound {
    assign: usize,
    upper: f64,
    lower: f64,
}

/// Lloyd iterations from the given initial centers (`k x d`).
///
/// The assignment pass is bound-pruned (Hamerly 2010) yet **bitwise
/// identical** to an exhaustive scan at every pool size: a point skips the
/// k-center scan only when its tightened upper bound is *strictly* below
/// its lower bound — which proves the exhaustive scan (with its
/// lowest-index tie-breaking) would have kept the same assignment — and the
/// inertia contribution it records is the exact squared distance to that
/// center, computed the same way the scan would have. See the differential
/// proptest in `tests/prune_differential.rs`.
#[allow(clippy::needless_range_loop)] // index style keeps the math readable
fn lloyd(points: &DenseMatrix, mut centers: DenseMatrix, cfg: &KMeansConfig) -> KMeans {
    let n = points.rows();
    let d = points.cols();
    let k = centers.rows();
    // upper = ∞ / lower = 0 forces a full scan on the first pass.
    let mut state = vec![
        PointBound {
            assign: 0,
            upper: f64::INFINITY,
            lower: 0.0,
        };
        n
    ];
    let mut counts = vec![0usize; k];
    let mut sums = vec![0.0; k * d];
    let mut center_moves = vec![0.0; k];
    let mut reseeded: Vec<usize> = Vec::new();
    let mut inertia = f64::INFINITY;
    let prune = cfg.prune;
    for _ in 0..cfg.max_iters.max(1) {
        // Fused assignment + partial centroid accumulation: every chunk
        // assigns its points sequentially in index order and accumulates
        // its own inertia / per-cluster sums and counts; partials are then
        // merged in chunk order. With one chunk this is exactly the
        // historical serial pass, and the output never depends on the pool
        // size (ordered reduction — see `roadpart_linalg::par`).
        let frozen = &centers;
        let stats = cfg
            .pool
            .chunked_map_mut(&mut state, DEFAULT_CHUNK, |r, st| {
                let mut chunk_inertia = 0.0;
                let mut sums = vec![0.0; k * d];
                let mut counts = vec![0usize; k];
                for (s, i) in st.iter_mut().zip(r) {
                    let p = points.row(i);
                    if prune && s.lower > 0.0 {
                        // Tighten the upper bound with the exact distance to
                        // the assigned center — needed for inertia anyway.
                        let exact = sq_dist(p, frozen.row(s.assign));
                        let tight = exact.sqrt();
                        s.upper = tight;
                        if tight < s.lower {
                            // Strictly closer than any other center can be:
                            // the scan could not have changed the assignment.
                            chunk_inertia += exact;
                            counts[s.assign] += 1;
                            for (acc, &v) in
                                sums[s.assign * d..(s.assign + 1) * d].iter_mut().zip(p)
                            {
                                *acc += v;
                            }
                            continue;
                        }
                    }
                    // Exhaustive scan, tracking the two smallest distances so
                    // the bounds can be rebuilt exactly. Centers are walked
                    // in blocks of four ([`sq_dist4`]) with lanes compared in
                    // ascending center order, so best/second/tie-breaking are
                    // bitwise those of the scalar one-center-at-a-time scan.
                    let (mut best_c, mut best_d, mut second_d) =
                        (0usize, f64::INFINITY, f64::INFINITY);
                    let mut c = 0usize;
                    while c + 4 <= k {
                        let dists = sq_dist4(
                            p,
                            [
                                frozen.row(c),
                                frozen.row(c + 1),
                                frozen.row(c + 2),
                                frozen.row(c + 3),
                            ],
                        );
                        for (l, &dist) in dists.iter().enumerate() {
                            if dist < best_d {
                                second_d = best_d;
                                best_d = dist;
                                best_c = c + l;
                            } else if dist < second_d {
                                second_d = dist;
                            }
                        }
                        c += 4;
                    }
                    while c < k {
                        let dist = sq_dist(p, frozen.row(c));
                        if dist < best_d {
                            second_d = best_d;
                            best_d = dist;
                            best_c = c;
                        } else if dist < second_d {
                            second_d = dist;
                        }
                        c += 1;
                    }
                    s.assign = best_c;
                    s.upper = best_d.sqrt();
                    s.lower = second_d.sqrt();
                    chunk_inertia += best_d;
                    counts[best_c] += 1;
                    for (acc, &v) in sums[best_c * d..(best_c + 1) * d].iter_mut().zip(p) {
                        *acc += v;
                    }
                }
                (chunk_inertia, sums, counts)
            });
        let mut new_inertia = 0.0;
        sums.iter_mut().for_each(|s| *s = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for (chunk_inertia, chunk_sums, chunk_counts) in stats {
            new_inertia += chunk_inertia;
            for (s, v) in sums.iter_mut().zip(chunk_sums) {
                *s += v;
            }
            for (c, v) in counts.iter_mut().zip(chunk_counts) {
                *c += v;
            }
        }
        let mut moved = 0.0f64;
        let mut max_move = 0.0f64;
        reseeded.clear();
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the point farthest from its
                // assigned center (`n >= 1` always holds here, so the
                // argmax exists).
                let Some(far) = max_by_f64_key(0..n, |&i| {
                    sq_dist(points.row(i), centers.row(state[i].assign))
                }) else {
                    center_moves[c] = 0.0;
                    continue;
                };
                let tele = sq_dist(centers.row(c), points.row(far));
                moved += tele;
                center_moves[c] = tele.sqrt();
                max_move = max_move.max(center_moves[c]);
                centers.row_mut(c).copy_from_slice(points.row(far));
                state[far].assign = c;
                reseeded.push(far);
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let mut delta = 0.0;
            for j in 0..d {
                let new = sums[c * d + j] * inv;
                let old = centers.get(c, j);
                delta += (new - old) * (new - old);
                centers.set(c, j, new);
            }
            moved += delta;
            center_moves[c] = delta.sqrt();
            max_move = max_move.max(center_moves[c]);
        }
        // Hamerly bound maintenance: each point's assigned center moved by
        // center_moves[assign] at most, and no center moved more than
        // max_move, so the bounds stay valid for the next pass. Reseeded
        // points get degenerate bounds (lower = 0) forcing a full rescan.
        if prune {
            for s in state.iter_mut() {
                s.upper += center_moves[s.assign];
                s.lower = (s.lower - max_move).max(0.0);
            }
            for &i in &reseeded {
                state[i].upper = 0.0;
                state[i].lower = 0.0;
            }
        }
        let converged = moved <= cfg.tol * (1.0 + inertia.min(new_inertia));
        inertia = new_inertia;
        if converged {
            break;
        }
    }

    KMeans {
        assignments: state.iter().map(|s| s.assign).collect(),
        centers,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data() -> DenseMatrix {
        // Three well-separated 2-D blobs of 10 points each.
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for i in 0..10 {
                let dx = (i as f64 * 0.13).sin() * 0.2;
                let dy = (i as f64 * 0.29).cos() * 0.2;
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        DenseMatrix::from_fn(30, 2, |i, j| rows[i][j])
    }

    #[test]
    fn recovers_blobs() {
        let data = blob_data();
        let r = kmeans(&data, 3, &KMeansConfig::default()).unwrap();
        // Points within each blob share a label; labels differ across blobs.
        for blob in 0..3 {
            let label = r.assignments[blob * 10];
            for i in 0..10 {
                assert_eq!(r.assignments[blob * 10 + i], label);
            }
        }
        let mut labels: Vec<usize> = (0..3).map(|b| r.assignments[b * 10]).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
        assert!(r.inertia < 5.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blob_data();
        let a = kmeans(&data, 3, &KMeansConfig::default()).unwrap();
        let b = kmeans(&data, 3, &KMeansConfig::default()).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_equals_n() {
        let data = blob_data();
        let r = kmeans(&data, 30, &KMeansConfig::default()).unwrap();
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn error_cases() {
        let data = blob_data();
        assert!(kmeans(&data, 0, &KMeansConfig::default()).is_err());
        assert!(kmeans(&data, 31, &KMeansConfig::default()).is_err());
        let bad = DenseMatrix::from_vec(1, 1, vec![f64::NAN]).unwrap();
        assert!(kmeans(&bad, 1, &KMeansConfig::default()).is_err());
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = DenseMatrix::from_fn(8, 2, |_, _| 3.25);
        let r = kmeans(&data, 3, &KMeansConfig::default()).unwrap();
        assert_eq!(r.assignments.len(), 8);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn warm_start_reaches_same_optimum() {
        let data = blob_data();
        let cold = kmeans(&data, 3, &KMeansConfig::default()).unwrap();
        let warm = kmeans(
            &data,
            3,
            &KMeansConfig {
                warm_start: Some(cold.centers.clone()),
                restarts: 1, // the warm run is the only run
                ..KMeansConfig::default()
            },
        )
        .unwrap();
        assert!(warm.inertia <= cold.inertia + 1e-9);
        // Same grouping (labels may be permuted): compare co-membership.
        for blob in 0..3 {
            let label = warm.assignments[blob * 10];
            for i in 0..10 {
                assert_eq!(warm.assignments[blob * 10 + i], label);
            }
        }
    }

    #[test]
    fn malformed_warm_start_is_ignored() {
        let data = blob_data();
        for bad in [
            DenseMatrix::zeros(2, 2),                    // wrong k
            DenseMatrix::zeros(3, 5),                    // wrong d
            DenseMatrix::from_fn(3, 2, |_, _| f64::NAN), // non-finite
        ] {
            let r = kmeans(
                &data,
                3,
                &KMeansConfig {
                    warm_start: Some(bad),
                    ..KMeansConfig::default()
                },
            )
            .unwrap();
            assert_eq!(r.assignments.len(), 30);
            assert!(r.inertia < 5.0, "fell back to k-means++ seeding");
        }
    }

    #[test]
    fn sq_dist4_is_bitwise_four_sq_dists() {
        // Awkward magnitudes so any re-association would show up in the bits.
        let dims = [1usize, 2, 3, 7, 16];
        for &d in &dims {
            let mk = |seed: f64| -> Vec<f64> {
                (0..d)
                    .map(|j| (seed + j as f64 * 0.37).sin() * 10f64.powi((j % 5) as i32 - 2))
                    .collect()
            };
            let p = mk(0.1);
            let c: Vec<Vec<f64>> = (0..4).map(|l| mk(1.0 + l as f64)).collect();
            let blocked = sq_dist4(&p, [&c[0], &c[1], &c[2], &c[3]]);
            for l in 0..4 {
                let scalar = sq_dist(&p, &c[l]);
                assert_eq!(
                    blocked[l].to_bits(),
                    scalar.to_bits(),
                    "lane {l} at dim {d}"
                );
            }
        }
    }

    #[test]
    fn restarts_never_worsen_best_inertia() {
        let data = blob_data();
        let one = kmeans(
            &data,
            3,
            &KMeansConfig {
                restarts: 1,
                ..KMeansConfig::default()
            },
        )
        .unwrap();
        let many = kmeans(
            &data,
            3,
            &KMeansConfig {
                restarts: 8,
                ..KMeansConfig::default()
            },
        )
        .unwrap();
        assert!(many.inertia <= one.inertia + 1e-9);
    }
}
