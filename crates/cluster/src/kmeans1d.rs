//! Exact one-dimensional k-means.
//!
//! §4.1 observes that 1-D k-means with sorted initialization avoids the bad
//! local optima of random seeding. We go one step further: in one dimension
//! optimal clusters are contiguous ranges of the sorted values, so the
//! globally optimal clustering is computable exactly by dynamic programming
//! with divide-and-conquer optimization in `O(kappa * n log n)` — fully
//! deterministic, and never worse than any Lloyd run. (The classic
//! reference is the Ckmeans.1d.dp algorithm of Wang & Song.)

use crate::error::{ClusterError, Result};

/// Result of a 1-D k-means run.
#[derive(Debug, Clone)]
pub struct KMeans1d {
    /// Cluster index per input value (in input order).
    pub assignments: Vec<usize>,
    /// Cluster means, ascending.
    pub centers: Vec<f64>,
    /// DP layers evaluated (kept for API compatibility with iterative
    /// solvers; equals `kappa`).
    pub iterations: usize,
    /// Final sum of squared within-cluster errors (the global optimum).
    pub sse: f64,
}

impl KMeans1d {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Number of points per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Prefix sums enabling `O(1)` within-range squared-error queries.
struct RangeCost {
    /// Prefix sums of values.
    s1: Vec<f64>,
    /// Prefix sums of squared values.
    s2: Vec<f64>,
}

impl RangeCost {
    fn new(sorted: &[f64]) -> Self {
        let mut s1 = Vec::with_capacity(sorted.len() + 1);
        let mut s2 = Vec::with_capacity(sorted.len() + 1);
        let (mut r1, mut r2) = (0.0, 0.0);
        s1.push(0.0);
        s2.push(0.0);
        for &v in sorted {
            r1 += v;
            r2 += v * v;
            s1.push(r1);
            s2.push(r2);
        }
        Self { s1, s2 }
    }

    /// Sum of squared deviations from the mean over `sorted[j..=i]`.
    #[inline]
    fn cost(&self, j: usize, i: usize) -> f64 {
        let len = (i - j + 1) as f64;
        let sum = self.s1[i + 1] - self.s1[j];
        let ssq = self.s2[i + 1] - self.s2[j];
        (ssq - sum * sum / len).max(0.0)
    }

    /// Mean over `sorted[j..=i]`.
    #[inline]
    fn mean(&self, j: usize, i: usize) -> f64 {
        (self.s1[i + 1] - self.s1[j]) / (i - j + 1) as f64
    }
}

/// Runs exact k-means on scalar values.
///
/// # Errors
/// Returns [`ClusterError::BadClusterCount`] unless `1 <= kappa <= values.len()`
/// and [`ClusterError::InvalidInput`] on non-finite values.
#[allow(clippy::needless_range_loop)] // DP index style mirrors the recurrence
pub fn kmeans_1d(values: &[f64], kappa: usize) -> Result<KMeans1d> {
    let n = values.len();
    if kappa == 0 || kappa > n {
        return Err(ClusterError::BadClusterCount {
            requested: kappa,
            points: n,
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(ClusterError::InvalidInput(
            "k-means values must be finite".into(),
        ));
    }

    // Sort once; remember original positions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| roadpart_linalg::ord::cmp_f64(values[a], values[b]));
    let sorted: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let rc = RangeCost::new(&sorted);

    // dp[i] = optimal SSE of sorted[0..=i] using the current layer count;
    // split[k][i] = first index of the last cluster in that optimum.
    let mut dp: Vec<f64> = (0..n).map(|i| rc.cost(0, i)).collect();
    let mut split: Vec<Vec<usize>> = vec![vec![0; n]; kappa];

    for k in 1..kappa {
        let prev = dp.clone();
        // Divide-and-conquer optimization: the optimal split position is
        // monotone in i, so solve the midpoint and recurse on halves with a
        // narrowed candidate window. Explicit stack avoids deep recursion.
        let mut next = vec![f64::INFINITY; n];
        // (lo, hi, opt_lo, opt_hi) over the i-range [lo, hi].
        let mut stack = vec![(k, n - 1, k, n - 1)];
        while let Some((lo, hi, opt_lo, opt_hi)) = stack.pop() {
            if lo > hi {
                continue;
            }
            let mid = (lo + hi) / 2;
            // Last cluster is sorted[j..=mid]; j ranges over the candidate
            // window intersected with validity (j >= k so that k clusters
            // fit on the left, j <= mid).
            let j_lo = opt_lo.max(k);
            let j_hi = opt_hi.min(mid);
            let mut best = (f64::INFINITY, j_lo);
            let mut j = j_lo;
            while j <= j_hi {
                let cand = prev[j - 1] + rc.cost(j, mid);
                if cand < best.0 {
                    best = (cand, j);
                }
                j += 1;
            }
            next[mid] = best.0;
            split[k][mid] = best.1;
            if mid > lo {
                stack.push((lo, mid - 1, opt_lo, best.1));
            }
            if mid < hi {
                stack.push((mid + 1, hi, best.1, opt_hi));
            }
        }
        dp = next;
    }

    // Backtrack cluster boundaries.
    let mut bounds = vec![0usize; kappa + 1];
    bounds[kappa] = n;
    let mut end = n - 1;
    for k in (1..kappa).rev() {
        let start = split[k][end];
        bounds[k] = start;
        end = start - 1;
    }

    let mut centers = Vec::with_capacity(kappa);
    let mut assignments = vec![0usize; n];
    for q in 0..kappa {
        let (lo, hi) = (bounds[q], bounds[q + 1]);
        debug_assert!(hi > lo, "DP clusters are non-empty by construction");
        centers.push(rc.mean(lo, hi - 1));
        for s in lo..hi {
            assignments[order[s]] = q;
        }
    }
    let sse = dp[n - 1].max(0.0);
    Ok(KMeans1d {
        assignments,
        centers,
        iterations: kappa,
        sse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal SSE for tiny inputs (all contiguous splits).
    fn brute_force_sse(sorted: &[f64], kappa: usize) -> f64 {
        fn go(rc: &RangeCost, start: usize, n: usize, k: usize) -> f64 {
            if k == 1 {
                return rc.cost(start, n - 1);
            }
            // Last piece must leave at least k-1 points before it.
            let mut best = f64::INFINITY;
            for end in start..=(n - k) {
                let head = rc.cost(start, end);
                let tail = go(rc, end + 1, n, k - 1);
                best = best.min(head + tail);
            }
            best
        }
        let rc = RangeCost::new(sorted);
        go(&rc, 0, sorted.len(), kappa)
    }

    #[test]
    fn matches_brute_force_optimum() {
        let mut values = vec![0.3, -1.2, 4.5, 4.4, 0.1, 2.2, -1.0, 7.7, 2.3, 0.0];
        roadpart_linalg::ord::sort_f64(&mut values);
        for kappa in 1..=5 {
            let r = kmeans_1d(&values, kappa).unwrap();
            let opt = brute_force_sse(&values, kappa);
            assert!(
                (r.sse - opt).abs() < 1e-9,
                "kappa={kappa}: DP {} vs brute force {opt}",
                r.sse
            );
        }
    }

    #[test]
    fn two_obvious_groups() {
        let values = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let r = kmeans_1d(&values, 2).unwrap();
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[1], r.assignments[2]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_ne!(r.assignments[0], r.assignments[3]);
        assert!((r.centers[0] - 0.1).abs() < 1e-9);
        assert!((r.centers[1] - 10.1).abs() < 1e-9);
        assert_eq!(r.sizes(), vec![3, 3]);
    }

    #[test]
    fn k_equals_one_gives_global_mean() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let r = kmeans_1d(&values, 1).unwrap();
        assert!((r.centers[0] - 2.5).abs() < 1e-12);
        assert!(r.assignments.iter().all(|&a| a == 0));
        assert!((r.sse - 5.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let values = [3.0, 1.0, 2.0];
        let r = kmeans_1d(&values, 3).unwrap();
        assert!(r.sse < 1e-12);
        let mut a = r.assignments.clone();
        a.sort_unstable();
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64 / 10.0).collect();
        let a = kmeans_1d(&values, 5).unwrap();
        let b = kmeans_1d(&values, 5).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn centers_are_sorted_and_clusters_contiguous() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let r = kmeans_1d(&values, 4).unwrap();
        for w in r.centers.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let mut pairs: Vec<(f64, usize)> = values
            .iter()
            .copied()
            .zip(r.assignments.iter().copied())
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn duplicate_heavy_data() {
        let values = [1.0, 1.0, 1.0, 1.0, 1.0, 9.0];
        let r = kmeans_1d(&values, 3).unwrap();
        assert_eq!(r.k(), 3);
        assert_eq!(r.assignments.len(), 6);
        // DP clusters are all non-empty; no cluster may hold everything.
        assert!(r.sizes().iter().all(|&s| s > 0 && s < 6));
    }

    #[test]
    fn error_cases() {
        assert!(kmeans_1d(&[1.0, 2.0], 0).is_err());
        assert!(kmeans_1d(&[1.0, 2.0], 3).is_err());
        assert!(kmeans_1d(&[1.0, f64::NAN], 1).is_err());
    }

    #[test]
    fn sse_strictly_monotone_in_kappa() {
        // The DP finds global optima, so SSE is non-increasing in kappa for
        // *any* input — the property Lloyd-style solvers cannot guarantee.
        let values: Vec<f64> = (0..120).map(|i| ((i * 61) % 97) as f64 * 0.13).collect();
        let mut prev = f64::INFINITY;
        for kappa in 1..10 {
            let r = kmeans_1d(&values, kappa).unwrap();
            assert!(
                r.sse <= prev + 1e-9,
                "SSE rose from {prev} to {} at kappa={kappa}",
                r.sse
            );
            prev = r.sse;
        }
    }
}
