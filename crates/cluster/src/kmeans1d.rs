//! Exact one-dimensional k-means.
//!
//! §4.1 observes that 1-D k-means with sorted initialization avoids the bad
//! local optima of random seeding. We go one step further: in one dimension
//! optimal clusters are contiguous ranges of the sorted values, so the
//! globally optimal clustering is computable exactly by dynamic programming
//! with divide-and-conquer optimization in `O(kappa * n log n)` — fully
//! deterministic, and never worse than any Lloyd run. (The classic
//! reference is the Ckmeans.1d.dp algorithm of Wang & Song.)

use crate::error::{ClusterError, Result};

/// Result of a 1-D k-means run.
#[derive(Debug, Clone)]
pub struct KMeans1d {
    /// Cluster index per input value (in input order).
    pub assignments: Vec<usize>,
    /// Cluster means, ascending.
    pub centers: Vec<f64>,
    /// DP layers evaluated (kept for API compatibility with iterative
    /// solvers; equals `kappa`).
    pub iterations: usize,
    /// Final sum of squared within-cluster errors (the global optimum).
    pub sse: f64,
}

impl KMeans1d {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Number of points per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Prefix sums enabling `O(1)` within-range squared-error queries.
#[derive(Debug, Clone)]
struct RangeCost {
    /// Prefix sums of values.
    s1: Vec<f64>,
    /// Prefix sums of squared values.
    s2: Vec<f64>,
}

impl RangeCost {
    fn new(sorted: &[f64]) -> Self {
        let mut s1 = Vec::with_capacity(sorted.len() + 1);
        let mut s2 = Vec::with_capacity(sorted.len() + 1);
        let (mut r1, mut r2) = (0.0, 0.0);
        s1.push(0.0);
        s2.push(0.0);
        for &v in sorted {
            r1 += v;
            r2 += v * v;
            s1.push(r1);
            s2.push(r2);
        }
        Self { s1, s2 }
    }

    /// Sum of squared deviations from the mean over `sorted[j..=i]`.
    #[inline]
    fn cost(&self, j: usize, i: usize) -> f64 {
        let len = (i - j + 1) as f64;
        let sum = self.s1[i + 1] - self.s1[j];
        let ssq = self.s2[i + 1] - self.s2[j];
        (ssq - sum * sum / len).max(0.0)
    }

    /// Mean over `sorted[j..=i]`.
    #[inline]
    fn mean(&self, j: usize, i: usize) -> f64 {
        (self.s1[i + 1] - self.s1[j]) / (i - j + 1) as f64
    }
}

/// The full DP state of an exact 1-D k-means run to `kappa_max` layers.
///
/// DP layer `k` (the split table row and the layer's final SSE) does not
/// depend on how many further layers run, so one sweep to `kappa_max`
/// contains the *complete* solution for every `kappa <= kappa_max`:
/// [`KMeans1dSweep::extract`] backtracks any of them bitwise-identical to
/// an independent [`kmeans_1d`] run at that `kappa`. The supergraph-mining
/// shortlist scan (which historically re-ran the whole DP once per
/// candidate `kappa`, `Σκ` layers instead of `κ_max`) reduces to one sweep
/// plus cheap per-`kappa` backtracks.
#[derive(Debug, Clone)]
pub struct KMeans1dSweep {
    /// Sorted position -> original index.
    order: Vec<usize>,
    /// Prefix sums over the sorted values.
    rc: RangeCost,
    /// `layer_sse[k-1]` = optimal SSE with `k` clusters (`dp[n-1]` after
    /// layer `k-1`).
    layer_sse: Vec<f64>,
    /// Flat `kappa_max x n` split table; row `k` is layer `k`'s
    /// first-index-of-last-cluster argmin (row 0 is unused, matching the
    /// historical layout).
    split: Vec<usize>,
    n: usize,
    kappa_max: usize,
}

/// Runs the exact 1-D k-means DP once up to `kappa_max` layers, retaining
/// every layer so any `kappa <= kappa_max` can be extracted without
/// re-solving.
///
/// The hot loop is allocation-lean by construction: the two DP layers are
/// double-buffered (no per-layer clone + fresh `INFINITY` fill — stale
/// entries below index `k` are provably never read, since layer `k + 1`
/// only reads `prev[j - 1]` for `j >= k + 1`) and the split table is one
/// flat allocation instead of `kappa` row vectors.
///
/// # Errors
/// Returns [`ClusterError::BadClusterCount`] unless
/// `1 <= kappa_max <= values.len()` and [`ClusterError::InvalidInput`] on
/// non-finite values.
pub fn kmeans_1d_sweep(values: &[f64], kappa_max: usize) -> Result<KMeans1dSweep> {
    let n = values.len();
    if kappa_max == 0 || kappa_max > n {
        return Err(ClusterError::BadClusterCount {
            requested: kappa_max,
            points: n,
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(ClusterError::InvalidInput(
            "k-means values must be finite".into(),
        ));
    }

    // Sort once; remember original positions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| roadpart_linalg::ord::cmp_f64(values[a], values[b]));
    let sorted: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let rc = RangeCost::new(&sorted);

    // dp[i] = optimal SSE of sorted[0..=i] using the current layer count;
    // split[k * n + i] = first index of the last cluster in that optimum.
    let mut dp: Vec<f64> = (0..n).map(|i| rc.cost(0, i)).collect();
    let mut next = vec![f64::INFINITY; n];
    let mut split = vec![0usize; kappa_max * n];
    let mut layer_sse = Vec::with_capacity(kappa_max);
    layer_sse.push(dp[n - 1]);
    let mut stack: Vec<(usize, usize, usize, usize)> = Vec::new();

    for k in 1..kappa_max {
        // Divide-and-conquer optimization: the optimal split position is
        // monotone in i, so solve the midpoint and recurse on halves with a
        // narrowed candidate window. Explicit stack avoids deep recursion.
        let (prev, split_row) = (&dp, &mut split[k * n..(k + 1) * n]);
        // (lo, hi, opt_lo, opt_hi) over the i-range [lo, hi].
        stack.clear();
        stack.push((k, n - 1, k, n - 1));
        while let Some((lo, hi, opt_lo, opt_hi)) = stack.pop() {
            if lo > hi {
                continue;
            }
            let mid = (lo + hi) / 2;
            // Last cluster is sorted[j..=mid]; j ranges over the candidate
            // window intersected with validity (j >= k so that k clusters
            // fit on the left, j <= mid).
            let j_lo = opt_lo.max(k);
            let j_hi = opt_hi.min(mid);
            let mut best = (f64::INFINITY, j_lo);
            let mut j = j_lo;
            while j <= j_hi {
                let cand = prev[j - 1] + rc.cost(j, mid);
                if cand < best.0 {
                    best = (cand, j);
                }
                j += 1;
            }
            next[mid] = best.0;
            split_row[mid] = best.1;
            if mid > lo {
                stack.push((lo, mid - 1, opt_lo, best.1));
            }
            if mid < hi {
                stack.push((mid + 1, hi, best.1, opt_hi));
            }
        }
        std::mem::swap(&mut dp, &mut next);
        layer_sse.push(dp[n - 1]);
    }

    Ok(KMeans1dSweep {
        order,
        rc,
        layer_sse,
        split,
        n,
        kappa_max,
    })
}

impl KMeans1dSweep {
    /// The deepest layer this sweep solved; every `kappa` up to this is
    /// extractable.
    pub fn kappa_max(&self) -> usize {
        self.kappa_max
    }

    /// Optimal SSE at `kappa` clusters without materializing the
    /// clustering.
    ///
    /// # Errors
    /// Returns [`ClusterError::BadClusterCount`] unless
    /// `1 <= kappa <= kappa_max`.
    pub fn sse(&self, kappa: usize) -> Result<f64> {
        if kappa == 0 || kappa > self.kappa_max {
            return Err(ClusterError::BadClusterCount {
                requested: kappa,
                points: self.kappa_max,
            });
        }
        Ok(self.layer_sse[kappa - 1].max(0.0))
    }

    /// Materializes the optimal `kappa`-clustering from the recorded DP
    /// state — bitwise-identical to `kmeans_1d(values, kappa)` on the
    /// original input.
    ///
    /// # Errors
    /// Returns [`ClusterError::BadClusterCount`] unless
    /// `1 <= kappa <= kappa_max`.
    pub fn extract(&self, kappa: usize) -> Result<KMeans1d> {
        if kappa == 0 || kappa > self.kappa_max {
            return Err(ClusterError::BadClusterCount {
                requested: kappa,
                points: self.kappa_max,
            });
        }
        let n = self.n;
        // Backtrack cluster boundaries.
        let mut bounds = vec![0usize; kappa + 1];
        bounds[kappa] = n;
        let mut end = n - 1;
        for k in (1..kappa).rev() {
            let start = self.split[k * n + end];
            bounds[k] = start;
            end = start - 1;
        }

        let mut centers = Vec::with_capacity(kappa);
        let mut assignments = vec![0usize; n];
        for q in 0..kappa {
            let (lo, hi) = (bounds[q], bounds[q + 1]);
            debug_assert!(hi > lo, "DP clusters are non-empty by construction");
            centers.push(self.rc.mean(lo, hi - 1));
            for s in lo..hi {
                assignments[self.order[s]] = q;
            }
        }
        let sse = self.layer_sse[kappa - 1].max(0.0);
        Ok(KMeans1d {
            assignments,
            centers,
            iterations: kappa,
            sse,
        })
    }
}

/// Runs exact k-means on scalar values.
///
/// One DP sweep to `kappa` layers plus a backtrack; see [`kmeans_1d_sweep`]
/// for amortizing the sweep across several `kappa` targets.
///
/// # Errors
/// Returns [`ClusterError::BadClusterCount`] unless `1 <= kappa <= values.len()`
/// and [`ClusterError::InvalidInput`] on non-finite values.
pub fn kmeans_1d(values: &[f64], kappa: usize) -> Result<KMeans1d> {
    kmeans_1d_sweep(values, kappa)?.extract(kappa)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal SSE for tiny inputs (all contiguous splits).
    fn brute_force_sse(sorted: &[f64], kappa: usize) -> f64 {
        fn go(rc: &RangeCost, start: usize, n: usize, k: usize) -> f64 {
            if k == 1 {
                return rc.cost(start, n - 1);
            }
            // Last piece must leave at least k-1 points before it.
            let mut best = f64::INFINITY;
            for end in start..=(n - k) {
                let head = rc.cost(start, end);
                let tail = go(rc, end + 1, n, k - 1);
                best = best.min(head + tail);
            }
            best
        }
        let rc = RangeCost::new(sorted);
        go(&rc, 0, sorted.len(), kappa)
    }

    #[test]
    fn matches_brute_force_optimum() {
        let mut values = vec![0.3, -1.2, 4.5, 4.4, 0.1, 2.2, -1.0, 7.7, 2.3, 0.0];
        roadpart_linalg::ord::sort_f64(&mut values);
        for kappa in 1..=5 {
            let r = kmeans_1d(&values, kappa).unwrap();
            let opt = brute_force_sse(&values, kappa);
            assert!(
                (r.sse - opt).abs() < 1e-9,
                "kappa={kappa}: DP {} vs brute force {opt}",
                r.sse
            );
        }
    }

    #[test]
    fn two_obvious_groups() {
        let values = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let r = kmeans_1d(&values, 2).unwrap();
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[1], r.assignments[2]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_ne!(r.assignments[0], r.assignments[3]);
        assert!((r.centers[0] - 0.1).abs() < 1e-9);
        assert!((r.centers[1] - 10.1).abs() < 1e-9);
        assert_eq!(r.sizes(), vec![3, 3]);
    }

    #[test]
    fn k_equals_one_gives_global_mean() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let r = kmeans_1d(&values, 1).unwrap();
        assert!((r.centers[0] - 2.5).abs() < 1e-12);
        assert!(r.assignments.iter().all(|&a| a == 0));
        assert!((r.sse - 5.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let values = [3.0, 1.0, 2.0];
        let r = kmeans_1d(&values, 3).unwrap();
        assert!(r.sse < 1e-12);
        let mut a = r.assignments.clone();
        a.sort_unstable();
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64 / 10.0).collect();
        let a = kmeans_1d(&values, 5).unwrap();
        let b = kmeans_1d(&values, 5).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn centers_are_sorted_and_clusters_contiguous() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let r = kmeans_1d(&values, 4).unwrap();
        for w in r.centers.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let mut pairs: Vec<(f64, usize)> = values
            .iter()
            .copied()
            .zip(r.assignments.iter().copied())
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn duplicate_heavy_data() {
        let values = [1.0, 1.0, 1.0, 1.0, 1.0, 9.0];
        let r = kmeans_1d(&values, 3).unwrap();
        assert_eq!(r.k(), 3);
        assert_eq!(r.assignments.len(), 6);
        // DP clusters are all non-empty; no cluster may hold everything.
        assert!(r.sizes().iter().all(|&s| s > 0 && s < 6));
    }

    #[test]
    fn error_cases() {
        assert!(kmeans_1d(&[1.0, 2.0], 0).is_err());
        assert!(kmeans_1d(&[1.0, 2.0], 3).is_err());
        assert!(kmeans_1d(&[1.0, f64::NAN], 1).is_err());
    }

    /// Pre-sweep reference: an independent full DP per `kappa` (what
    /// `kmeans_1d` compiles to, spelled out so the equivalence claim is
    /// against a separately-constructed sweep, not the same object).
    fn fresh_run(values: &[f64], kappa: usize) -> KMeans1d {
        kmeans_1d_sweep(values, kappa)
            .unwrap()
            .extract(kappa)
            .unwrap()
    }

    #[test]
    fn shared_sweep_extract_bitwise_matches_independent_runs() {
        let values: Vec<f64> = (0..157)
            .map(|i| ((i * 73) % 149) as f64 * 0.31 - 7.0)
            .collect();
        let kappa_max = 24;
        let sweep = kmeans_1d_sweep(&values, kappa_max).unwrap();
        for kappa in 1..=kappa_max {
            let shared = sweep.extract(kappa).unwrap();
            let fresh = fresh_run(&values, kappa);
            assert_eq!(shared.assignments, fresh.assignments, "kappa {kappa}");
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&shared.centers), bits(&fresh.centers), "kappa {kappa}");
            assert_eq!(shared.sse.to_bits(), fresh.sse.to_bits(), "kappa {kappa}");
            assert_eq!(shared.sse.to_bits(), sweep.sse(kappa).unwrap().to_bits());
            assert_eq!(shared.iterations, kappa);
        }
    }

    #[test]
    fn sweep_error_cases() {
        assert!(kmeans_1d_sweep(&[1.0, 2.0], 0).is_err());
        assert!(kmeans_1d_sweep(&[1.0, 2.0], 3).is_err());
        let sweep = kmeans_1d_sweep(&[1.0, 2.0, 3.0], 2).unwrap();
        assert_eq!(sweep.kappa_max(), 2);
        assert!(sweep.extract(0).is_err());
        assert!(sweep.extract(3).is_err());
        assert!(sweep.sse(3).is_err());
    }

    #[test]
    fn sse_strictly_monotone_in_kappa() {
        // The DP finds global optima, so SSE is non-increasing in kappa for
        // *any* input — the property Lloyd-style solvers cannot guarantee.
        let values: Vec<f64> = (0..120).map(|i| ((i * 61) % 97) as f64 * 0.13).collect();
        let mut prev = f64::INFINITY;
        for kappa in 1..10 {
            let r = kmeans_1d(&values, kappa).unwrap();
            assert!(
                r.sse <= prev + 1e-9,
                "SSE rose from {prev} to {} at kappa={kappa}",
                r.sse
            );
            prev = r.sse;
        }
    }
}
