//! Cluster-count optimality measures (paper §4.2).
//!
//! Three measures over a clustering of scalar values:
//!
//! * **clustering gain** Δ(C) (Jung et al. \[6\]) — maximized at the optimal
//!   number of clusters;
//! * **clustering balance** E(C) (Jung et al. \[6\]) — minimized at the
//!   optimal number of clusters;
//! * **moderated clustering gain (MCG)** Θ(C) (Eq. 1) — the paper's novel
//!   measure: clustering gain per cluster, moderated by a compactness factor
//!   `Θ₂ ∈ [0, 1]` that discounts sparse, diffuse clusters.

use crate::error::{ClusterError, Result};
use crate::kmeans1d::{kmeans_1d, kmeans_1d_sweep, KMeans1d};
use serde::{Deserialize, Serialize};

/// Per-cluster summary statistics shared by all three measures.
struct ClusterStats {
    size: usize,
    /// Squared distance of the cluster mean from the global mean.
    mean_gap_sq: f64,
    /// Within-cluster sum of squared errors.
    intra_sq: f64,
}

fn cluster_stats(values: &[f64], assignments: &[usize], kappa: usize) -> Result<Vec<ClusterStats>> {
    if values.len() != assignments.len() {
        return Err(ClusterError::InvalidInput(format!(
            "values ({}) and assignments ({}) differ in length",
            values.len(),
            assignments.len()
        )));
    }
    if let Some(&bad) = assignments.iter().find(|&&a| a >= kappa) {
        return Err(ClusterError::InvalidInput(format!(
            "assignment {bad} out of range for kappa = {kappa}"
        )));
    }
    let global_mean = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    };
    let mut sums = vec![0.0f64; kappa];
    let mut counts = vec![0usize; kappa];
    for (&v, &a) in values.iter().zip(assignments) {
        sums[a] += v;
        counts[a] += 1;
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    let mut intra = vec![0.0f64; kappa];
    for (&v, &a) in values.iter().zip(assignments) {
        let d = v - means[a];
        intra[a] += d * d;
    }
    Ok((0..kappa)
        .map(|q| ClusterStats {
            size: counts[q],
            mean_gap_sq: (means[q] - global_mean) * (means[q] - global_mean),
            intra_sq: intra[q],
        })
        .collect())
}

/// Clustering gain `Δ(C) = Σ_q (|C_q| - 1) ||μ_q - μ_0||²` — higher is
/// better. Empty clusters contribute nothing.
///
/// # Errors
/// Returns [`ClusterError::InvalidInput`] on shape mismatch or out-of-range
/// assignments.
pub fn clustering_gain(values: &[f64], assignments: &[usize], kappa: usize) -> Result<f64> {
    Ok(cluster_stats(values, assignments, kappa)?
        .iter()
        .filter(|s| s.size > 0)
        .map(|s| (s.size as f64 - 1.0) * s.mean_gap_sq)
        .sum())
}

/// Clustering balance `E(C) = Λ_intra + Λ_inter` where
/// `Λ_intra = Σ_q Σ_{d∈C_q} ||d - μ_q||²` and
/// `Λ_inter = Σ_q ||μ_q - μ_0||²` (unweighted, Jung et al. \[6\]) — lower is
/// better. Note the identity `gain + balance = Σ_i ||d_i - μ_0||²` (total
/// SSE), which is why maximizing the gain and minimizing the balance select
/// the same optimum — the equivalence \[6\] proves and the paper relies on.
///
/// # Errors
/// Same conditions as [`clustering_gain`].
pub fn clustering_balance(values: &[f64], assignments: &[usize], kappa: usize) -> Result<f64> {
    let stats = cluster_stats(values, assignments, kappa)?;
    let intra: f64 = stats.iter().map(|s| s.intra_sq).sum();
    let inter: f64 = stats
        .iter()
        .filter(|s| s.size > 0)
        .map(|s| s.mean_gap_sq)
        .sum();
    Ok(intra + inter)
}

/// Moderated clustering gain `Θ(C)` (Eq. 1) — higher is better.
///
/// `Θ = Σ_q Θ₁(C_q) · Θ₂(C_q)` with `Θ₁ = (|C_q| - 1) ||μ_q - μ_0||²` (the
/// per-cluster gain) and
/// `Θ₂ = 1 - log₂(1 + intra_q / (|C_q| ||μ_q - μ_0||²))` clamped to `[0, 1]`
/// (the paper states `Θ₂ ∈ [0, 1]`; the raw formula can dip below zero for
/// very diffuse clusters, so we clamp — see DESIGN.md). Clusters whose mean
/// coincides with the global mean contribute zero.
///
/// # Errors
/// Same conditions as [`clustering_gain`].
pub fn mcg(values: &[f64], assignments: &[usize], kappa: usize) -> Result<f64> {
    let stats = cluster_stats(values, assignments, kappa)?;
    Ok(stats
        .iter()
        .filter(|s| s.size > 0 && s.mean_gap_sq > 0.0)
        .map(|s| {
            let theta1 = (s.size as f64 - 1.0) * s.mean_gap_sq;
            let ratio = s.intra_sq / (s.size as f64 * s.mean_gap_sq);
            let theta2 = (1.0 - (1.0 + ratio).log2()).clamp(0.0, 1.0);
            theta1 * theta2
        })
        .sum())
}

/// One point of an optimality sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimalityPoint {
    /// Number of clusters requested from k-means.
    pub kappa: usize,
    /// Moderated clustering gain Θ (maximize).
    pub mcg: f64,
    /// Clustering gain Δ (maximize).
    pub gain: f64,
    /// Clustering balance E (minimize).
    pub balance: f64,
}

/// Evaluates all three measures on one clustering.
fn measure_point(values: &[f64], km: &KMeans1d, kappa: usize) -> Result<OptimalityPoint> {
    Ok(OptimalityPoint {
        kappa,
        mcg: mcg(values, &km.assignments, kappa)?,
        gain: clustering_gain(values, &km.assignments, kappa)?,
        balance: clustering_balance(values, &km.assignments, kappa)?,
    })
}

/// Solves 1-D k-means for every `kappa` in `kappas` and evaluates all three
/// optimality measures — the data behind Figure 5 and the ablation study.
///
/// All `kappa` targets share **one** DP sweep to the largest of them (see
/// [`kmeans_1d_sweep`]): each clustering — and therefore every measure — is
/// bitwise-identical to an independent [`kmeans_1d`] run, but the DP cost
/// drops from `Σκ` layers to `max κ`. [`optimality_sweep_legacy`] keeps the
/// historical per-`kappa` resolve for benchmarks and differential tests.
///
/// # Errors
/// Propagates k-means failures (`kappa` out of range, non-finite values).
pub fn optimality_sweep(
    values: &[f64],
    kappas: impl IntoIterator<Item = usize>,
) -> Result<Vec<OptimalityPoint>> {
    let kappas: Vec<usize> = kappas.into_iter().collect();
    let Some(&kappa_hi) = kappas.iter().max() else {
        return Ok(Vec::new());
    };
    // Invalid requests (kappa = 0 or > n) must surface the same error the
    // per-kappa path would raise, not a sweep-construction artifact.
    if let Some(&bad) = kappas.iter().find(|&&k| k == 0 || k > values.len()) {
        return Err(ClusterError::BadClusterCount {
            requested: bad,
            points: values.len(),
        });
    }
    let sweep = kmeans_1d_sweep(values, kappa_hi)?;
    let mut out = Vec::with_capacity(kappas.len());
    for kappa in kappas {
        let km = sweep.extract(kappa)?;
        out.push(measure_point(values, &km, kappa)?);
    }
    Ok(out)
}

/// The pre-shared-sweep [`optimality_sweep`]: an independent DP re-solve
/// per `kappa`. Produces bitwise-identical output at `Σκ`-layer cost; kept
/// as the baseline arm of `pipeline_bench` and the reference side of the
/// shared-vs-legacy differential tests.
///
/// # Errors
/// Propagates k-means failures (`kappa` out of range, non-finite values).
pub fn optimality_sweep_legacy(
    values: &[f64],
    kappas: impl IntoIterator<Item = usize>,
) -> Result<Vec<OptimalityPoint>> {
    let mut out = Vec::new();
    for kappa in kappas {
        let km = kmeans_1d(values, kappa)?;
        out.push(measure_point(values, &km, kappa)?);
    }
    Ok(out)
}

/// The `kappa` whose MCG is maximal in a sweep (the paper's optimal `θ`);
/// `None` for an empty sweep.
pub fn mcg_argmax(sweep: &[OptimalityPoint]) -> Option<usize> {
    roadpart_linalg::ord::max_by_f64_key(sweep.iter(), |p| p.mcg).map(|p| p.kappa)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three clearly separated scalar blobs.
    fn three_blobs() -> Vec<f64> {
        let mut v = Vec::new();
        for centre in [0.0, 10.0, 25.0] {
            for i in 0..20 {
                v.push(centre + (i as f64 * 0.7).sin() * 0.3);
            }
        }
        v
    }

    #[test]
    fn mcg_peaks_at_true_cluster_count() {
        let values = three_blobs();
        let sweep = optimality_sweep(&values, 2..=8).unwrap();
        assert_eq!(mcg_argmax(&sweep), Some(3), "sweep: {sweep:?}");
    }

    #[test]
    fn shared_sweep_bitwise_matches_legacy_per_kappa_resolve() {
        let values: Vec<f64> = (0..300)
            .map(|i| ((i * 53) % 271) as f64 * 0.17 + ((i % 7) as f64) * 0.01)
            .collect();
        let shared = optimality_sweep(&values, 2..=24).unwrap();
        let legacy = optimality_sweep_legacy(&values, 2..=24).unwrap();
        assert_eq!(shared.len(), legacy.len());
        for (s, l) in shared.iter().zip(&legacy) {
            assert_eq!(s.kappa, l.kappa);
            assert_eq!(s.mcg.to_bits(), l.mcg.to_bits(), "kappa {}", s.kappa);
            assert_eq!(s.gain.to_bits(), l.gain.to_bits(), "kappa {}", s.kappa);
            assert_eq!(
                s.balance.to_bits(),
                l.balance.to_bits(),
                "kappa {}",
                s.kappa
            );
        }
        // Non-contiguous and unordered kappa sets go through the same path.
        let subset = optimality_sweep(&values, [9usize, 3, 17]).unwrap();
        let subset_legacy = optimality_sweep_legacy(&values, [9usize, 3, 17]).unwrap();
        for (s, l) in subset.iter().zip(&subset_legacy) {
            assert_eq!(s.kappa, l.kappa);
            assert_eq!(s.mcg.to_bits(), l.mcg.to_bits());
        }
        // Error parity for out-of-range requests.
        assert!(optimality_sweep(&values, [0usize]).is_err());
        assert!(optimality_sweep(&values, [values.len() + 1]).is_err());
        assert!(optimality_sweep(&values, Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn gain_and_balance_move_oppositely() {
        // Gain rises then saturates; balance dips at the optimum.
        let values = three_blobs();
        let sweep = optimality_sweep(&values, 2..=6).unwrap();
        let at = |kappa: usize| sweep.iter().find(|p| p.kappa == kappa).unwrap();
        assert!(at(3).gain > at(2).gain);
        assert!(at(3).balance < at(2).balance);
    }

    #[test]
    fn theta2_moderation_discounts_diffuse_clusters() {
        // Compact clusters: MCG close to plain gain.
        let compact = three_blobs();
        let km = kmeans_1d(&compact, 3).unwrap();
        let g = clustering_gain(&compact, &km.assignments, 3).unwrap();
        let m = mcg(&compact, &km.assignments, 3).unwrap();
        assert!(m <= g + 1e-9);
        assert!(m > 0.8 * g, "compact data should keep most of the gain");

        // A cluster whose internal scatter rivals its separation is heavily
        // moderated: values {-3, 3} around mean 0 vs a far singleton.
        // Cluster 0: gap^2 = (0 - 10/3)^2 ~ 11.1, intra = 18,
        // ratio = 18 / (2 * 11.1) ~ 0.81, theta2 = 1 - log2(1.81) ~ 0.14.
        let values = [-3.0, 3.0, 10.0];
        let labels = [0usize, 0, 1];
        let g = clustering_gain(&values, &labels, 2).unwrap();
        let m = mcg(&values, &labels, 2).unwrap();
        assert!(g > 10.0);
        assert!(
            m < 0.2 * g,
            "diffuse cluster should be moderated: {m} vs {g}"
        );
    }

    #[test]
    fn gain_plus_balance_equals_total_sse() {
        let values = three_blobs();
        let total: f64 = {
            let mu = values.iter().sum::<f64>() / values.len() as f64;
            values.iter().map(|v| (v - mu) * (v - mu)).sum()
        };
        for kappa in 1..6 {
            let km = kmeans_1d(&values, kappa).unwrap();
            let g = clustering_gain(&values, &km.assignments, kappa).unwrap();
            let b = clustering_balance(&values, &km.assignments, kappa).unwrap();
            assert!(
                (g + b - total).abs() < 1e-6,
                "kappa={kappa}: gain {g} + balance {b} != total {total}"
            );
        }
    }

    #[test]
    fn mcg_clamps_to_nonnegative_terms() {
        // A single cluster holding everything has mu_q == mu_0: zero MCG.
        let values = [1.0, 2.0, 3.0];
        let m = mcg(&values, &[0, 0, 0], 1).unwrap();
        assert_eq!(m, 0.0);
    }

    #[test]
    fn empty_cluster_tolerated() {
        let values = [1.0, 1.0, 9.0];
        // Cluster 1 empty.
        let m = mcg(&values, &[0, 0, 2], 3).unwrap();
        assert!(m.is_finite());
        let g = clustering_gain(&values, &[0, 0, 2], 3).unwrap();
        assert!(g >= 0.0);
    }

    #[test]
    fn input_validation() {
        assert!(mcg(&[1.0], &[0, 1], 2).is_err());
        assert!(mcg(&[1.0, 2.0], &[0, 5], 2).is_err());
        assert!(clustering_balance(&[1.0], &[2], 1).is_err());
    }

    #[test]
    fn balance_is_sum_of_error_terms() {
        // Hand-computed: values {0, 2} in one cluster; mean 1; global mean 1.
        // intra = 1 + 1 = 2; inter = 2 * 0 = 0.
        let b = clustering_balance(&[0.0, 2.0], &[0, 0], 1).unwrap();
        assert!((b - 2.0).abs() < 1e-12);
    }
}
