//! Error types for clustering.

use std::fmt;

/// Errors produced by the clustering algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Requested more clusters than data points (or zero clusters).
    BadClusterCount {
        /// Requested number of clusters.
        requested: usize,
        /// Number of available data points.
        points: usize,
    },
    /// Input data violates a precondition (NaN, shape mismatch, ...).
    InvalidInput(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::BadClusterCount { requested, points } => write!(
                f,
                "cannot form {requested} clusters from {points} data points"
            ),
            ClusterError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;
