//! # roadpart-cluster
//!
//! Clustering substrate for the `roadpart` partitioning stack (paper §4.1,
//! §4.2 and Algorithm 3 line 10):
//!
//! * [`kmeans1d::kmeans_1d`] — deterministic 1-D k-means with the paper's
//!   sorted equal-interval initialization, used to cluster traffic
//!   densities;
//! * [`kmeans::kmeans`] — general k-means++ / Lloyd over row vectors, used
//!   to cluster spectral-embedding rows;
//! * [`optimality`] — the moderated clustering gain (MCG, Eq. 1) together
//!   with the clustering gain and clustering balance of Jung et al. \[6\];
//! * [`components`] — FIFO (BFS) connected components constrained to
//!   same-cluster links, the supernode-forming primitive of §4.3.1.

pub mod components;
pub mod error;
pub mod kmeans;
pub mod kmeans1d;
pub mod optimality;

pub use components::{component_groups, constrained_components, count_components};
pub use error::{ClusterError, Result};
pub use kmeans::{kmeans, KMeans, KMeansConfig};
pub use kmeans1d::{kmeans_1d, kmeans_1d_sweep, KMeans1d, KMeans1dSweep};
pub use optimality::{
    clustering_balance, clustering_gain, mcg, mcg_argmax, optimality_sweep,
    optimality_sweep_legacy, OptimalityPoint,
};
