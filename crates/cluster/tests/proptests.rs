//! Property-based tests for the clustering substrate.

use proptest::prelude::*;
use roadpart_cluster::{
    clustering_balance, clustering_gain, constrained_components, kmeans, kmeans_1d, mcg,
    ClusterError, KMeansConfig,
};
use roadpart_linalg::par::ThreadPool;
use roadpart_linalg::{CsrMatrix, DenseMatrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 1-D k-means structural invariants: valid assignments, sorted
    /// centers, contiguous clusters in value order, SSE consistency.
    #[test]
    fn kmeans_1d_invariants(
        values in proptest::collection::vec(-10.0f64..10.0, 2..60),
        kappa in 1usize..8,
    ) {
        let kappa = kappa.min(values.len());
        let r = kmeans_1d(&values, kappa).unwrap();
        prop_assert_eq!(r.assignments.len(), values.len());
        prop_assert!(r.assignments.iter().all(|&a| a < kappa));
        for w in r.centers.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        // Contiguity: sort values; cluster ids must be non-decreasing.
        let mut pairs: Vec<(f64, usize)> = values
            .iter().copied().zip(r.assignments.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        // Reported SSE matches a recomputation.
        let sse: f64 = values.iter().zip(&r.assignments)
            .map(|(&v, &a)| (v - r.centers[a]).powi(2)).sum();
        prop_assert!((sse - r.sse).abs() < 1e-6 * (1.0 + sse));
    }

    /// More clusters never increase the optimal SSE.
    #[test]
    fn kmeans_1d_sse_monotone(values in proptest::collection::vec(-5.0f64..5.0, 8..50)) {
        let mut prev = f64::INFINITY;
        for kappa in 1..6.min(values.len()) {
            let r = kmeans_1d(&values, kappa).unwrap();
            prop_assert!(r.sse <= prev + 1e-9, "kappa={kappa}: {} > {prev}", r.sse);
            prev = r.sse;
        }
    }

    /// gain + balance equals the total SSE around the global mean, and MCG
    /// never exceeds the gain (theta2 is in [0,1]).
    #[test]
    fn optimality_identities(
        values in proptest::collection::vec(-5.0f64..5.0, 4..60),
        kappa in 1usize..6,
    ) {
        let kappa = kappa.min(values.len());
        let km = kmeans_1d(&values, kappa).unwrap();
        let g = clustering_gain(&values, &km.assignments, kappa).unwrap();
        let b = clustering_balance(&values, &km.assignments, kappa).unwrap();
        let m = mcg(&values, &km.assignments, kappa).unwrap();
        let mu = values.iter().sum::<f64>() / values.len() as f64;
        let total: f64 = values.iter().map(|v| (v - mu).powi(2)).sum();
        prop_assert!((g + b - total).abs() < 1e-6 * (1.0 + total));
        prop_assert!(m <= g + 1e-9);
        prop_assert!(m >= 0.0);
    }

    /// Constrained components: same component implies same label and
    /// mutual reachability through that label.
    #[test]
    fn components_respect_labels(
        n in 4usize..30,
        chords in proptest::collection::vec((0usize..30, 0usize..30), 0..20),
        label_seed in proptest::collection::vec(0usize..3, 30),
    ) {
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        for &(a, b) in &chords {
            if a < n && b < n && a != b {
                edges.push((a, b, 1.0));
            }
        }
        let adj = CsrMatrix::from_undirected_edges(n, &edges).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| label_seed[i]).collect();
        let comp = constrained_components(&adj, Some(&labels)).unwrap();
        prop_assert_eq!(comp.len(), n);
        for (u, v, _) in adj.iter() {
            if comp[u] == comp[v] {
                prop_assert_eq!(labels[u], labels[v]);
            }
        }
        // Component ids are dense.
        let k = comp.iter().copied().max().unwrap() + 1;
        for c in 0..k {
            prop_assert!(comp.contains(&c));
        }
    }

    /// Degenerate density vectors — all values identical. The exact DP must
    /// terminate (no infinite refinement loop), return the requested number
    /// of non-empty clusters, zero SSE, and centers equal to the value.
    #[test]
    fn kmeans_1d_all_equal_densities(
        value in -100.0f64..100.0,
        n in 1usize..50,
        kappa_raw in 1usize..8,
    ) {
        let kappa = kappa_raw.min(n);
        let values = vec![value; n];
        let r = kmeans_1d(&values, kappa).unwrap();
        prop_assert_eq!(r.k(), kappa);
        prop_assert!(r.sizes().iter().all(|&s| s > 0));
        prop_assert!(r.sse.abs() < 1e-9);
        for &c in &r.centers {
            prop_assert!((c - value).abs() < 1e-9);
        }
        // The optimality measures stay finite on zero-variance data.
        let g = clustering_gain(&values, &r.assignments, kappa).unwrap();
        let m = mcg(&values, &r.assignments, kappa).unwrap();
        prop_assert!(g.is_finite());
        prop_assert!(m.is_finite());
    }

    /// A single-element density vector clusters trivially; asking for more
    /// clusters than elements is a structured error, never a panic.
    #[test]
    fn kmeans_1d_single_element(value in -100.0f64..100.0, kappa in 2usize..10) {
        let r = kmeans_1d(&[value], 1).unwrap();
        prop_assert_eq!(r.k(), 1);
        prop_assert_eq!(r.assignments.clone(), vec![0]);
        prop_assert!((r.centers[0] - value).abs() < 1e-12);
        match kmeans_1d(&[value], kappa) {
            Err(ClusterError::BadClusterCount { requested, points }) => {
                prop_assert_eq!(requested, kappa);
                prop_assert_eq!(points, 1);
            }
            other => prop_assert!(false, "expected BadClusterCount, got {other:?}"),
        }
    }

    /// Non-finite densities (NaN, +inf, -inf) anywhere in the vector are
    /// rejected with a structured error — no panic, no loop, no poisoned
    /// result.
    #[test]
    fn kmeans_1d_rejects_non_finite(
        values in proptest::collection::vec(-10.0f64..10.0, 1..40),
        position in 0usize..40,
        which in 0usize..3,
        kappa_raw in 1usize..6,
    ) {
        let mut values = values;
        let position = position % values.len();
        values[position] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which];
        let kappa = kappa_raw.min(values.len());
        match kmeans_1d(&values, kappa) {
            Err(ClusterError::InvalidInput(_)) => {}
            other => prop_assert!(false, "expected InvalidInput, got {other:?}"),
        }
    }

    /// Hamerly bound pruning is an optimization, not an approximation:
    /// with `prune: true` the assignment/update pass must be **bitwise
    /// identical** to the exhaustive scan (`prune: false`) — identical
    /// assignments, bit-equal centroid coordinates, bit-equal inertia —
    /// across point geometries, cluster counts, seeds, warm starts, and
    /// thread-pool sizes.
    #[test]
    fn pruned_kmeans_is_bit_identical_to_unpruned(
        data in proptest::collection::vec(-8.0f64..8.0, 12..240),
        d in 1usize..5,
        k_raw in 1usize..7,
        seed in 0u64..1_000,
        restarts in 1usize..4,
        warm_sel in 0usize..2,
    ) {
        // `data.len() >= 12` and `d <= 4` guarantee `n >= 3`.
        let n = data.len() / d;
        let warm = warm_sel == 1;
        let k = k_raw.min(n);
        let points = DenseMatrix::from_vec(n, d, data[..n * d].to_vec()).unwrap();
        let warm_start = if warm {
            // A deliberately rough warm start: the first k rows. Exercises
            // the warm-start Lloyd path under both pruning modes.
            let rows: Vec<f64> = points.as_slice()[..k * d].to_vec();
            Some(DenseMatrix::from_vec(k, d, rows).unwrap())
        } else {
            None
        };
        let mut reference: Option<roadpart_cluster::KMeans> = None;
        for threads in [1usize, 2, 4] {
            for prune in [false, true] {
                let cfg = KMeansConfig {
                    max_iters: 40,
                    restarts,
                    seed,
                    tol: 1e-9,
                    warm_start: warm_start.clone(),
                    prune,
                    pool: ThreadPool::new(threads),
                };
                let run = kmeans(&points, k, &cfg).unwrap();
                match &reference {
                    None => reference = Some(run),
                    Some(base) => {
                        prop_assert_eq!(&run.assignments, &base.assignments);
                        prop_assert_eq!(run.inertia.to_bits(), base.inertia.to_bits());
                        prop_assert_eq!(run.centers.rows(), base.centers.rows());
                        for (a, b) in run.centers.as_slice().iter()
                            .zip(base.centers.as_slice())
                        {
                            prop_assert_eq!(a.to_bits(), b.to_bits());
                        }
                    }
                }
            }
        }
    }

    /// Zero-variance data keeps every optimality measure finite and the
    /// gain/balance decomposition exact (everything is zero).
    #[test]
    fn optimality_measures_degenerate_zero_variance(
        value in -50.0f64..50.0,
        n in 2usize..40,
        kappa_raw in 1usize..5,
    ) {
        let kappa = kappa_raw.min(n);
        let values = vec![value; n];
        let km = kmeans_1d(&values, kappa).unwrap();
        let g = clustering_gain(&values, &km.assignments, kappa).unwrap();
        let b = clustering_balance(&values, &km.assignments, kappa).unwrap();
        prop_assert!(g.abs() < 1e-9, "gain {g}");
        prop_assert!(b.abs() < 1e-9, "balance {b}");
    }
}
