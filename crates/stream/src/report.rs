//! Machine-readable per-epoch reporting (the streaming analogue of the
//! supervisor's `RunReport`).

use crate::drift::{DriftProbe, EpochAction};
use crate::health::{EpochResilience, HealthState};
use roadpart_eval::PartitionDrift;
use serde::{Deserialize, Serialize};

/// Everything one epoch did, serializable for logs and dashboards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// 1-based epoch counter.
    pub epoch: u64,
    /// The action actually executed (after any degradation).
    pub action: EpochAction,
    /// The action the drift policy asked for. Differs from `action` only
    /// when the self-healing ladder degraded the epoch.
    #[serde(default)]
    pub intended: EpochAction,
    /// The drift signals behind the decision.
    pub probe: DriftProbe,
    /// Snapshot-store version after the epoch (unchanged on no-op).
    pub version: u64,
    /// Partition count being served after the epoch.
    pub k: usize,
    /// Old-vs-new structural drift when the epoch repartitioned.
    pub drift: Option<PartitionDrift>,
    /// True when a global rebuild reused the previous epoch's spectral
    /// artifacts.
    pub warm_started: bool,
    /// Wall-clock spent in the epoch.
    pub elapsed_ms: f64,
    /// Engine health after the epoch.
    #[serde(default)]
    pub health: HealthState,
    /// What the self-healing machinery did this epoch: solve attempts,
    /// backoff, deadline state, ingest/quarantine accounting.
    #[serde(default)]
    pub resilience: EpochResilience,
}

/// An append-only log of epoch reports with summary accessors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamLog {
    /// Reports in epoch order.
    pub reports: Vec<EpochReport>,
}

impl StreamLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch.
    pub fn push(&mut self, report: EpochReport) {
        self.reports.push(report);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// `(noop, regional, global)` epoch counts.
    pub fn action_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.reports {
            match r.action {
                EpochAction::NoOp => c.0 += 1,
                EpochAction::Regional => c.1 += 1,
                EpochAction::Global => c.2 += 1,
            }
        }
        c
    }

    /// `(healthy, degraded, quarantining)` epoch counts.
    pub fn health_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.reports {
            match r.health {
                HealthState::Healthy => c.0 += 1,
                HealthState::Degraded => c.1 += 1,
                HealthState::Quarantining => c.2 += 1,
            }
        }
        c
    }

    /// Epochs where the executed action fell short of the intended one.
    pub fn degraded_epochs(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.resilience.degraded)
            .count()
    }

    /// Total wall-clock across recorded epochs, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.reports.iter().map(|r| r.elapsed_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(epoch: u64, action: EpochAction) -> EpochReport {
        EpochReport {
            epoch,
            action,
            intended: action,
            probe: DriftProbe {
                max_divergence: 0.0,
                trial_nmi: 1.0,
                reference_nmi: 1.0,
            },
            version: 1,
            k: 4,
            drift: None,
            warm_started: false,
            elapsed_ms: 1.5,
            health: HealthState::Healthy,
            resilience: EpochResilience::default(),
        }
    }

    #[test]
    fn counts_and_totals() {
        let mut log = StreamLog::new();
        log.push(report(1, EpochAction::NoOp));
        log.push(report(2, EpochAction::NoOp));
        log.push(report(3, EpochAction::Global));
        assert_eq!(log.len(), 3);
        assert_eq!(log.action_counts(), (2, 0, 1));
        assert!((log.total_ms() - 4.5).abs() < 1e-12);
        assert_eq!(log.health_counts(), (3, 0, 0));
        assert_eq!(log.degraded_epochs(), 0);
    }

    #[test]
    fn degraded_epochs_are_counted() {
        let mut log = StreamLog::new();
        let mut r = report(1, EpochAction::NoOp);
        r.intended = EpochAction::Global;
        r.resilience.degraded = true;
        r.health = HealthState::Degraded;
        log.push(r);
        log.push(report(2, EpochAction::Global));
        assert_eq!(log.health_counts(), (1, 1, 0));
        assert_eq!(log.degraded_epochs(), 1);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let mut r = report(7, EpochAction::Regional);
        r.drift = Some(roadpart_eval::PartitionDrift::between(
            &[0, 0, 1],
            &[0, 1, 1],
        ));
        r.health = HealthState::Quarantining;
        r.resilience.dropped = 3;
        let json = serde_json::to_string(&r).unwrap();
        let back: EpochReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.epoch, 7);
        assert_eq!(back.action, EpochAction::Regional);
        assert!(back.drift.is_some());
        assert_eq!(back.health, HealthState::Quarantining);
        assert_eq!(back.resilience.dropped, 3);
    }

    #[test]
    fn pre_resilience_reports_still_deserialize() {
        // A report serialized before the health/resilience fields existed
        // must load with healthy defaults.
        let json = r#"{
            "epoch": 2,
            "action": "Global",
            "probe": {"max_divergence": 0.5, "trial_nmi": 0.4, "reference_nmi": 0.9},
            "version": 2,
            "k": 4,
            "drift": null,
            "warm_started": true,
            "elapsed_ms": 2.0
        }"#;
        let back: EpochReport = serde_json::from_str(json).unwrap();
        assert_eq!(back.intended, EpochAction::NoOp);
        assert_eq!(back.health, HealthState::Healthy);
        assert!(!back.resilience.degraded);
        assert!(back.resilience.attempts.is_empty());
    }
}
