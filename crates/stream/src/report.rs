//! Machine-readable per-epoch reporting (the streaming analogue of the
//! supervisor's `RunReport`).

use crate::drift::{DriftProbe, EpochAction};
use roadpart_eval::PartitionDrift;
use serde::{Deserialize, Serialize};

/// Everything one epoch did, serializable for logs and dashboards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// 1-based epoch counter.
    pub epoch: u64,
    /// The decision the drift policy made.
    pub action: EpochAction,
    /// The drift signals behind the decision.
    pub probe: DriftProbe,
    /// Snapshot-store version after the epoch (unchanged on no-op).
    pub version: u64,
    /// Partition count being served after the epoch.
    pub k: usize,
    /// Old-vs-new structural drift when the epoch repartitioned.
    pub drift: Option<PartitionDrift>,
    /// True when a global rebuild reused the previous epoch's spectral
    /// artifacts.
    pub warm_started: bool,
    /// Wall-clock spent in the epoch.
    pub elapsed_ms: f64,
}

/// An append-only log of epoch reports with summary accessors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamLog {
    /// Reports in epoch order.
    pub reports: Vec<EpochReport>,
}

impl StreamLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch.
    pub fn push(&mut self, report: EpochReport) {
        self.reports.push(report);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// `(noop, regional, global)` epoch counts.
    pub fn action_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.reports {
            match r.action {
                EpochAction::NoOp => c.0 += 1,
                EpochAction::Regional => c.1 += 1,
                EpochAction::Global => c.2 += 1,
            }
        }
        c
    }

    /// Total wall-clock across recorded epochs, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.reports.iter().map(|r| r.elapsed_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(epoch: u64, action: EpochAction) -> EpochReport {
        EpochReport {
            epoch,
            action,
            probe: DriftProbe {
                max_divergence: 0.0,
                trial_nmi: 1.0,
                reference_nmi: 1.0,
            },
            version: 1,
            k: 4,
            drift: None,
            warm_started: false,
            elapsed_ms: 1.5,
        }
    }

    #[test]
    fn counts_and_totals() {
        let mut log = StreamLog::new();
        log.push(report(1, EpochAction::NoOp));
        log.push(report(2, EpochAction::NoOp));
        log.push(report(3, EpochAction::Global));
        assert_eq!(log.len(), 3);
        assert_eq!(log.action_counts(), (2, 0, 1));
        assert!((log.total_ms() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let mut r = report(7, EpochAction::Regional);
        r.drift = Some(roadpart_eval::PartitionDrift::between(
            &[0, 0, 1],
            &[0, 1, 1],
        ));
        let json = serde_json::to_string(&r).unwrap();
        let back: EpochReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.epoch, 7);
        assert_eq!(back.action, EpochAction::Regional);
        assert!(back.drift.is_some());
    }
}
