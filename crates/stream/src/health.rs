//! Self-healing machinery for the epoch control loop: engine health, the
//! resilience configuration, and per-source quarantine of malformed feeds.
//!
//! The stream engine's contract is "never publish a torn or invalid
//! partition, never let one bad input poison the aggregate". This module
//! supplies the three pieces `engine` composes into that contract:
//!
//! * [`ResilienceConfig`] — the per-epoch deadline budget, the bounded
//!   retry/backoff schedule for solver failures (mirroring the batch
//!   supervisor's seed-rotation machinery), and the quarantine thresholds;
//! * [`QuarantineTracker`] — per-source accounting of clean, repaired, and
//!   dropped snapshots, quarantining sources that keep sending garbage and
//!   rehabilitating them after sustained clean behaviour;
//! * [`HealthState`] — the coarse Healthy / Degraded / Quarantining signal
//!   surfaced in `EpochReport` and the CLI.

use crate::drift::EpochAction;
use crate::error::{Result, StreamError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Coarse engine health, recomputed at every epoch boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Last epoch executed as intended and no source is quarantined.
    #[default]
    Healthy,
    /// Last epoch was degraded: the deadline budget forced a cheaper rung
    /// of the ladder, or solver failures exhausted the retry budget of the
    /// intended action.
    Degraded,
    /// Last epoch executed as intended but at least one feed source is
    /// quarantined — served quality is fine, input coverage is not.
    Quarantining,
}

impl HealthState {
    /// Stable lower-case label for logs and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantining => "quarantining",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What to do when the epoch budget is exhausted before the intended
/// action has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineMode {
    /// Walk down the ladder (Global → Regional → NoOp) and serve the last
    /// good snapshot — keep serving, flag [`HealthState::Degraded`].
    Degrade,
    /// Fail the epoch with [`StreamError::DeadlineExceeded`] — for callers
    /// that would rather alert than silently serve a stale partition.
    Fail,
}

/// Robustness knobs for the epoch control loop.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Wall-clock budget per epoch, milliseconds. `None` disables deadline
    /// checks entirely (the pre-existing behaviour).
    pub epoch_budget_ms: Option<f64>,
    /// What a blown budget does; only consulted when a budget is set.
    pub deadline_mode: DeadlineMode,
    /// Extra attempts per ladder rung after the first, for retryable
    /// (numerical) solver failures. `0` degrades on the first failure.
    pub max_retries: usize,
    /// Backoff before retry `i` is `backoff_base_ms * backoff_factor^(i-1)`
    /// milliseconds. `0.0` records the schedule without sleeping — the
    /// right setting for replay tests and microbenchmarks.
    pub backoff_base_ms: f64,
    /// Multiplier between consecutive backoffs.
    pub backoff_factor: f64,
    /// Seed offset between retry attempts, so a retry is not a bit-identical
    /// rerun of the failure (same constant as the batch supervisor).
    pub seed_stride: u64,
    /// Consecutive malformed snapshots (repaired, empty, or stale) after
    /// which a source is quarantined.
    pub quarantine_threshold: usize,
    /// Consecutive clean snapshots a quarantined source must deliver to be
    /// released.
    pub rehab_clean: usize,
    /// Consecutive bit-identical snapshots after which a source counts as
    /// stale (a stuck sensor). `0` disables staleness detection.
    pub stale_after: usize,
    /// Test hook: fail this many solve attempts with an injected
    /// `NotConverged` before executing real solves. Exercises the retry and
    /// degradation paths deterministically; `0` in production.
    pub inject_epoch_faults: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            epoch_budget_ms: None,
            deadline_mode: DeadlineMode::Degrade,
            max_retries: 2,
            backoff_base_ms: 0.0,
            backoff_factor: 2.0,
            seed_stride: 0x9e37_79b9,
            quarantine_threshold: 3,
            rehab_clean: 2,
            stale_after: 0,
            inject_epoch_faults: 0,
        }
    }
}

impl ResilienceConfig {
    /// Checks the documented preconditions.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidConfig`] for non-positive budgets,
    /// non-finite backoff settings, or zero quarantine/rehab thresholds.
    pub fn validate(&self) -> Result<()> {
        if let Some(b) = self.epoch_budget_ms {
            if !b.is_finite() || b < 0.0 {
                return Err(StreamError::InvalidConfig(format!(
                    "epoch budget must be finite and >= 0 ms, got {b}"
                )));
            }
        }
        if !self.backoff_base_ms.is_finite() || self.backoff_base_ms < 0.0 {
            return Err(StreamError::InvalidConfig(format!(
                "backoff base must be finite and >= 0 ms, got {}",
                self.backoff_base_ms
            )));
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(StreamError::InvalidConfig(format!(
                "backoff factor must be finite and >= 1, got {}",
                self.backoff_factor
            )));
        }
        if self.quarantine_threshold == 0 {
            return Err(StreamError::InvalidConfig(
                "quarantine threshold must be >= 1".into(),
            ));
        }
        if self.rehab_clean == 0 {
            return Err(StreamError::InvalidConfig(
                "rehab threshold must be >= 1".into(),
            ));
        }
        Ok(())
    }

    /// Backoff before the `retry`-th retry (1-based), in milliseconds.
    pub fn backoff_ms(&self, retry: usize) -> f64 {
        if retry == 0 {
            return 0.0;
        }
        self.backoff_base_ms * self.backoff_factor.powi(retry as i32 - 1)
    }
}

/// How [`crate::engine::StreamEngine::ingest_guarded`] disposed of one
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestVerdict {
    /// Accepted untouched.
    Clean,
    /// Accepted after sanitization repaired anomalous values; counts as a
    /// malformed strike against the source.
    Repaired,
    /// Dropped: the source is quarantined, the snapshot was unrepairable,
    /// or the feed is stale.
    Dropped,
}

/// Running accounting for one feed source.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SourceStats {
    /// Snapshots accepted untouched.
    pub accepted: usize,
    /// Snapshots accepted after repair.
    pub repaired: usize,
    /// Snapshots dropped (quarantined, unrepairable, or stale).
    pub dropped: usize,
    /// Current run of malformed (repaired/unrepairable/stale) snapshots.
    pub consecutive_malformed: usize,
    /// Current run of clean snapshots (drives rehabilitation).
    pub consecutive_clean: usize,
    /// True while the source's snapshots are being dropped.
    pub quarantined: bool,
    /// Fingerprint of the last snapshot (staleness detection).
    #[serde(skip)]
    last_fingerprint: u64,
    /// Length of the current run of identical fingerprints.
    #[serde(skip)]
    consecutive_identical: usize,
}

/// Order-independent fingerprint-by-position of a raw snapshot (FNV-1a
/// over the bit patterns, so NaNs fingerprint consistently).
fn fingerprint(densities: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in densities {
        for b in d.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Per-source quarantine state machine.
///
/// A source accumulates a *strike* for every malformed snapshot (one that
/// needed repair, could not be repaired, or is stale); `quarantine_threshold`
/// consecutive strikes quarantine it, after which everything it sends is
/// dropped until it delivers `rehab_clean` consecutive clean snapshots.
#[derive(Debug, Clone, Default)]
pub struct QuarantineTracker {
    sources: BTreeMap<String, SourceStats>,
}

/// What the tracker decided about one snapshot (before the engine acts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrackDisposition {
    /// Clean and the source is live: accept.
    AcceptClean,
    /// Repaired and the source is live: accept the sanitized values.
    AcceptRepaired,
    /// Drop (quarantined source, stale, or unrepairable).
    Drop,
}

impl QuarantineTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats for one source, if it has ever reported.
    pub fn source(&self, name: &str) -> Option<&SourceStats> {
        self.sources.get(name)
    }

    /// Names of currently quarantined sources, sorted.
    pub fn quarantined_sources(&self) -> Vec<String> {
        self.sources
            .iter()
            .filter(|(_, s)| s.quarantined)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// True when any source is quarantined.
    pub fn any_quarantined(&self) -> bool {
        self.sources.values().any(|s| s.quarantined)
    }

    /// Total snapshots dropped across all sources.
    pub fn total_dropped(&self) -> usize {
        self.sources.values().map(|s| s.dropped).sum()
    }

    /// Advances the state machine for one snapshot. `raw` is the snapshot
    /// as received (for staleness fingerprinting); `repaired` says whether
    /// sanitization had to touch it; `unrepairable` marks snapshots
    /// sanitization rejected outright.
    pub(crate) fn track(
        &mut self,
        source: &str,
        raw: &[f64],
        repaired: bool,
        unrepairable: bool,
        cfg: &ResilienceConfig,
    ) -> TrackDisposition {
        let stats = self.sources.entry(source.to_string()).or_default();

        // Staleness: a stuck sensor repeats the same bits forever.
        let fp = fingerprint(raw);
        if stats.accepted + stats.repaired + stats.dropped > 0 && fp == stats.last_fingerprint {
            stats.consecutive_identical += 1;
        } else {
            stats.consecutive_identical = 0;
        }
        stats.last_fingerprint = fp;
        let stale = cfg.stale_after > 0 && stats.consecutive_identical >= cfg.stale_after;

        let malformed = repaired || unrepairable || stale;
        if malformed {
            stats.consecutive_clean = 0;
            stats.consecutive_malformed += 1;
            if stats.consecutive_malformed >= cfg.quarantine_threshold {
                stats.quarantined = true;
            }
        } else {
            stats.consecutive_malformed = 0;
            stats.consecutive_clean += 1;
        }

        if stats.quarantined {
            // Rehabilitation: sustained clean behaviour releases the source;
            // the releasing snapshot itself is accepted.
            if !malformed && stats.consecutive_clean >= cfg.rehab_clean {
                stats.quarantined = false;
                stats.accepted += 1;
                return TrackDisposition::AcceptClean;
            }
            stats.dropped += 1;
            return TrackDisposition::Drop;
        }
        if unrepairable || stale {
            stats.dropped += 1;
            return TrackDisposition::Drop;
        }
        if repaired {
            stats.repaired += 1;
            return TrackDisposition::AcceptRepaired;
        }
        stats.accepted += 1;
        TrackDisposition::AcceptClean
    }
}

/// One solve attempt inside an epoch (the streaming analogue of the batch
/// supervisor's `AttemptRecord`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochAttempt {
    /// The ladder rung this attempt ran.
    pub action: EpochAction,
    /// Zero-based attempt index within the rung.
    pub attempt: usize,
    /// The seed in force (rotated between attempts).
    pub seed: u64,
    /// Whether the attempt produced a publishable partition.
    pub succeeded: bool,
    /// The full error chain when it did not.
    pub error: Option<String>,
}

/// Resilience telemetry for one epoch, embedded in `EpochReport`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochResilience {
    /// Every solve attempt, in execution order (empty for plain no-ops).
    pub attempts: Vec<EpochAttempt>,
    /// True when the executed action is cheaper than the intended one.
    pub degraded: bool,
    /// True when the epoch budget expired before the ladder finished.
    pub deadline_blown: bool,
    /// The budget in force, if any.
    pub budget_ms: Option<f64>,
    /// Total backoff scheduled between retries this epoch.
    pub backoff_ms_total: f64,
    /// Snapshots accepted untouched since the previous epoch.
    pub accepted: usize,
    /// Snapshots accepted after repair since the previous epoch.
    pub repaired: usize,
    /// Snapshots dropped since the previous epoch.
    pub dropped: usize,
    /// Sources quarantined at the epoch boundary.
    pub quarantined_sources: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ResilienceConfig {
        ResilienceConfig::default()
    }

    #[test]
    fn default_config_validates_and_backoff_grows_geometrically() {
        let c = ResilienceConfig {
            backoff_base_ms: 10.0,
            backoff_factor: 2.0,
            ..cfg()
        };
        c.validate().unwrap();
        assert_eq!(c.backoff_ms(0), 0.0);
        assert!((c.backoff_ms(1) - 10.0).abs() < 1e-12);
        assert!((c.backoff_ms(3) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            ResilienceConfig {
                epoch_budget_ms: Some(-1.0),
                ..cfg()
            },
            ResilienceConfig {
                epoch_budget_ms: Some(f64::NAN),
                ..cfg()
            },
            ResilienceConfig {
                backoff_base_ms: -2.0,
                ..cfg()
            },
            ResilienceConfig {
                backoff_factor: 0.5,
                ..cfg()
            },
            ResilienceConfig {
                quarantine_threshold: 0,
                ..cfg()
            },
            ResilienceConfig {
                rehab_clean: 0,
                ..cfg()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn repeated_strikes_quarantine_and_clean_streak_rehabilitates() {
        let c = cfg(); // threshold 3, rehab 2
        let mut q = QuarantineTracker::new();
        // Distinct repaired snapshots: three strikes.
        assert_eq!(
            q.track("s", &[1.0], true, false, &c),
            TrackDisposition::AcceptRepaired
        );
        assert_eq!(
            q.track("s", &[2.0], true, false, &c),
            TrackDisposition::AcceptRepaired
        );
        assert_eq!(
            q.track("s", &[3.0], true, false, &c),
            TrackDisposition::Drop
        );
        assert!(q.any_quarantined());
        // Clean snapshots while quarantined: first still dropped, second
        // reaches the rehab streak and is accepted.
        assert_eq!(
            q.track("s", &[4.0], false, false, &c),
            TrackDisposition::Drop
        );
        assert_eq!(
            q.track("s", &[5.0], false, false, &c),
            TrackDisposition::AcceptClean
        );
        assert!(!q.any_quarantined());
        let s = q.source("s").unwrap();
        assert_eq!((s.accepted, s.repaired, s.dropped), (1, 2, 2));
        // A malformed snapshot mid-rehab resets the clean streak.
        let mut q2 = QuarantineTracker::new();
        for v in [1.0, 2.0, 3.0] {
            q2.track("x", &[v], true, false, &c);
        }
        assert!(q2.any_quarantined());
        q2.track("x", &[4.0], false, false, &c);
        q2.track("x", &[5.0], true, false, &c); // strike resets rehab
        assert_eq!(
            q2.track("x", &[6.0], false, false, &c),
            TrackDisposition::Drop,
            "one clean snapshot after a reset must not release"
        );
    }

    #[test]
    fn unrepairable_snapshots_are_dropped_and_count_as_strikes() {
        let c = cfg();
        let mut q = QuarantineTracker::new();
        for v in [1.0, 2.0] {
            assert_eq!(q.track("s", &[v], false, true, &c), TrackDisposition::Drop);
        }
        assert!(!q.any_quarantined(), "two strikes is below the threshold");
        assert_eq!(
            q.track("s", &[3.0], false, true, &c),
            TrackDisposition::Drop
        );
        assert!(q.any_quarantined());
        assert_eq!(q.total_dropped(), 3);
        assert_eq!(q.quarantined_sources(), vec!["s".to_string()]);
    }

    #[test]
    fn stuck_feeds_go_stale_and_fresh_bits_recover() {
        let c = ResilienceConfig {
            stale_after: 2,
            ..cfg()
        };
        let mut q = QuarantineTracker::new();
        // Same bits over and over: the first two pass, then staleness bites.
        assert_eq!(
            q.track("s", &[7.0], false, false, &c),
            TrackDisposition::AcceptClean
        );
        assert_eq!(
            q.track("s", &[7.0], false, false, &c),
            TrackDisposition::AcceptClean
        );
        assert_eq!(
            q.track("s", &[7.0], false, false, &c),
            TrackDisposition::Drop
        );
        // Fresh bits reset the identical run.
        assert_eq!(
            q.track("s", &[8.0], false, false, &c),
            TrackDisposition::AcceptClean
        );
        // Disabled staleness never drops.
        let mut q2 = QuarantineTracker::new();
        for _ in 0..20 {
            assert_eq!(
                q2.track("s", &[7.0], false, false, &cfg()),
                TrackDisposition::AcceptClean
            );
        }
    }

    #[test]
    fn sources_are_tracked_independently() {
        let c = cfg();
        let mut q = QuarantineTracker::new();
        for v in [1.0, 2.0, 3.0] {
            q.track("bad", &[v], true, false, &c);
        }
        q.track("good", &[1.0], false, false, &c);
        assert!(q.source("bad").unwrap().quarantined);
        assert!(!q.source("good").unwrap().quarantined);
        assert_eq!(
            q.track("good", &[2.0], false, false, &c),
            TrackDisposition::AcceptClean
        );
    }

    #[test]
    fn health_labels_are_stable() {
        assert_eq!(HealthState::Healthy.label(), "healthy");
        assert_eq!(HealthState::Degraded.to_string(), "degraded");
        assert_eq!(HealthState::Quarantining.label(), "quarantining");
        let json = serde_json::to_string(&HealthState::Degraded).unwrap();
        let back: HealthState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, HealthState::Degraded);
    }
}
