//! Per-epoch drift detection and the refresh policy.
//!
//! Deciding *whether* to repartition is much cheaper than repartitioning:
//! the probe combines two O(n log n) signals over the current aggregate —
//!
//! 1. **density divergence**: the largest per-partition relative change of
//!    mean density against the baseline captured at the last refresh
//!    ([`roadpart_eval::max_group_divergence`]) — detects congestion
//!    migrating *within* the current structure;
//! 2. **trial-alignment retention**: a 1-D k-means over the current
//!    densities (the same clustering the supergraph miner uses as its first
//!    step) is compared to the live partition via
//!    [`roadpart_eval::similarity::nmi`], and that alignment is normalized
//!    by the same measurement over the *baseline* densities. Absolute
//!    trial-vs-live NMI is small even at refresh time (a spatial partition
//!    never matches a raw density clustering exactly), so the policy reacts
//!    to alignment *loss* — retention near 1 means the natural congestion
//!    grouping still relates to the served partition the way it did when
//!    the partition was built; retention near 0 means it walked away.
//!
//! The thresholds in [`DriftPolicy`] map the probe to one of three
//! [`EpochAction`]s: do nothing, refresh regions in place, or rebuild
//! globally.

use crate::error::{Result, StreamError};
use roadpart_cluster::kmeans_1d;
use roadpart_eval::{max_group_divergence, similarity::nmi};
use serde::{Deserialize, Serialize};

/// What the engine does with an epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochAction {
    /// Drift below every threshold: keep serving the current partition.
    #[default]
    NoOp,
    /// Moderate drift: re-partition each region independently on its own
    /// subgraph (`core::distributed`), keeping region boundaries.
    Regional,
    /// Heavy drift: full warm-started global repartition.
    Global,
}

/// Thresholds steering the epoch decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftPolicy {
    /// Divergence at or below this (and alignment retention at or above
    /// [`Self::noop_retention`]) is a [`EpochAction::NoOp`].
    pub noop_divergence: f64,
    /// Alignment-retention floor for a no-op epoch.
    pub noop_retention: f64,
    /// Divergence above this (or retention below [`Self::global_retention`])
    /// forces [`EpochAction::Global`]; the band between no-op and global is
    /// [`EpochAction::Regional`].
    pub global_divergence: f64,
    /// Alignment-retention floor below which only a global rebuild helps.
    pub global_retention: f64,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        Self {
            noop_divergence: 0.10,
            noop_retention: 0.60,
            global_divergence: 0.50,
            global_retention: 0.25,
        }
    }
}

impl DriftPolicy {
    /// Validates threshold ordering (`noop <= global` on both axes).
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidConfig`] on inverted or non-finite
    /// thresholds.
    pub fn validate(&self) -> Result<()> {
        let all = [
            self.noop_divergence,
            self.noop_retention,
            self.global_divergence,
            self.global_retention,
        ];
        if all.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err(StreamError::InvalidConfig(
                "drift thresholds must be finite and non-negative".into(),
            ));
        }
        if self.noop_divergence > self.global_divergence {
            return Err(StreamError::InvalidConfig(
                "noop_divergence must not exceed global_divergence".into(),
            ));
        }
        if self.global_retention > self.noop_retention {
            return Err(StreamError::InvalidConfig(
                "global_retention must not exceed noop_retention".into(),
            ));
        }
        Ok(())
    }

    /// Maps a probe to an action.
    pub fn decide(&self, probe: &DriftProbe) -> EpochAction {
        let retention = probe.retention();
        if probe.max_divergence <= self.noop_divergence && retention >= self.noop_retention {
            EpochAction::NoOp
        } else if probe.max_divergence > self.global_divergence || retention < self.global_retention
        {
            EpochAction::Global
        } else {
            EpochAction::Regional
        }
    }
}

/// The measured drift signals for one epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftProbe {
    /// Largest per-partition relative density change vs. the baseline.
    pub max_divergence: f64,
    /// NMI between a cheap 1-D trial clustering of the *current* densities
    /// and the live partition.
    pub trial_nmi: f64,
    /// The same trial-vs-live NMI measured on the *baseline* densities —
    /// the alignment the partition had when it was built/refreshed.
    pub reference_nmi: f64,
}

/// Reference alignments below this floor carry no signal; retention is
/// computed against the floor instead to avoid dividing by noise.
const RETENTION_FLOOR: f64 = 0.05;

impl DriftProbe {
    /// Measures drift of `current` densities against the `baseline`
    /// captured when `live_labels` was last rebuilt.
    ///
    /// # Errors
    /// Propagates 1-D k-means failures (non-finite densities).
    pub fn measure(live_labels: &[usize], baseline: &[f64], current: &[f64]) -> Result<Self> {
        let max_divergence = max_group_divergence(live_labels, baseline, current);
        let k_live = live_labels.iter().copied().max().map_or(1, |m| m + 1);
        let kappa = k_live.clamp(1, current.len().max(1));
        let trial_nmi = nmi(&kmeans_1d(current, kappa)?.assignments, live_labels);
        let reference_nmi = nmi(&kmeans_1d(baseline, kappa)?.assignments, live_labels);
        Ok(Self {
            max_divergence,
            trial_nmi,
            reference_nmi,
        })
    }

    /// Fraction of the refresh-time trial alignment still present: `1` (or
    /// above) means the natural congestion grouping relates to the served
    /// partition as well as it did at refresh time; near `0` means the
    /// structure walked away.
    pub fn retention(&self) -> f64 {
        self.trial_nmi / self.reference_nmi.max(RETENTION_FLOOR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_feed_is_a_noop() {
        let labels = [0, 0, 1, 1];
        let base = [0.1, 0.1, 0.9, 0.9];
        let probe = DriftProbe::measure(&labels, &base, &base).unwrap();
        assert!(probe.max_divergence < 1e-12);
        assert!(probe.trial_nmi > 0.99, "trial clustering finds the split");
        assert_eq!(DriftPolicy::default().decide(&probe), EpochAction::NoOp);
    }

    #[test]
    fn inverted_structure_forces_global() {
        let labels = [0, 0, 0, 1, 1, 1];
        let base = [0.1, 0.1, 0.1, 0.9, 0.9, 0.9];
        // Congestion pattern now cuts across the served partition.
        let cur = [0.1, 0.9, 0.1, 0.9, 0.1, 0.9];
        let probe = DriftProbe::measure(&labels, &base, &cur).unwrap();
        assert!(probe.trial_nmi < 0.25);
        assert_eq!(DriftPolicy::default().decide(&probe), EpochAction::Global);
    }

    #[test]
    fn moderate_shift_lands_in_the_regional_band() {
        let policy = DriftPolicy::default();
        let probe = DriftProbe {
            max_divergence: 0.3,
            trial_nmi: 0.5,
            reference_nmi: 1.0,
        };
        assert!((probe.retention() - 0.5).abs() < 1e-12);
        assert_eq!(policy.decide(&probe), EpochAction::Regional);
    }

    #[test]
    fn retention_is_relative_to_the_reference_alignment() {
        // Weak absolute alignment that hasn't moved since refresh time is
        // NOT drift: retention stays at 1.
        let probe = DriftProbe {
            max_divergence: 0.05,
            trial_nmi: 0.12,
            reference_nmi: 0.12,
        };
        assert!((probe.retention() - 1.0).abs() < 1e-12);
        assert_eq!(DriftPolicy::default().decide(&probe), EpochAction::NoOp);
        // A noise-floor reference never inflates retention explosively.
        let probe = DriftProbe {
            max_divergence: 0.05,
            trial_nmi: 0.04,
            reference_nmi: 0.0,
        };
        assert!(probe.retention() <= 1.0);
    }

    #[test]
    fn validate_rejects_inverted_thresholds() {
        assert!(DriftPolicy::default().validate().is_ok());
        let inverted = DriftPolicy {
            noop_divergence: 0.9,
            ..Default::default()
        };
        assert!(inverted.validate().is_err());
        let retention_flipped = DriftPolicy {
            global_retention: 0.9,
            ..Default::default()
        };
        assert!(retention_flipped.validate().is_err());
        let non_finite = DriftPolicy {
            noop_retention: f64::NAN,
            ..Default::default()
        };
        assert!(non_finite.validate().is_err());
    }
}
