//! The epoch-based online repartitioning engine.
//!
//! Lifecycle per epoch:
//!
//! 1. the caller [`ingest`](StreamEngine::ingest)s density updates as they
//!    arrive (any number per epoch, including zero); untrusted feeds go
//!    through [`ingest_guarded`](StreamEngine::ingest_guarded), which
//!    sanitizes anomalies and quarantines sources that keep sending
//!    garbage instead of poisoning the aggregate;
//! 2. [`run_epoch`](StreamEngine::run_epoch) reduces the feed to one
//!    aggregate density per segment, probes drift against the baseline
//!    captured at the last refresh, and acts:
//!    [`EpochAction::NoOp`] serves on, [`EpochAction::Regional`] refreshes
//!    each region on its own subgraph, [`EpochAction::Global`] rebuilds the
//!    whole partition with a warm-started spectral solve;
//! 3. any new partition is published to the [`PartitionStore`] — readers
//!    holding the store handle never block and never see a partial update.
//!
//! The epoch loop is *self-healing*: numerical solver failures are retried
//! with rotated seeds and exponential backoff (the batch supervisor's
//! machinery, inlined into the epoch), and when the retry budget or the
//! per-epoch deadline ([`ResilienceConfig::epoch_budget_ms`]) is exhausted
//! the intended action degrades down the ladder Global → Regional → NoOp —
//! the engine keeps serving the last good snapshot rather than stalling the
//! readers. Every epoch reports a [`HealthState`] summarizing whether that
//! machinery had to engage.
//!
//! Warm starts make the expensive path cheap: the previous epoch's
//! eigenvectors seed the Lanczos iteration and its centroids seed the
//! eigenspace k-means ([`roadpart_cut::spectral_partition_warm`]), so a
//! global rebuild after modest drift converges in a fraction of the cold
//! iteration count.

use crate::aggregate::{AggregateKind, DensityAggregator};
use crate::drift::{DriftPolicy, DriftProbe, EpochAction};
use crate::error::{Result, StreamError};
use crate::health::{
    DeadlineMode, EpochAttempt, EpochResilience, HealthState, IngestVerdict, QuarantineTracker,
    ResilienceConfig, TrackDisposition,
};
use crate::report::EpochReport;
use crate::snapshot::PartitionStore;
use roadpart::pipeline::STRICT_INVARIANTS;
use roadpart::sanitize::{sanitize_densities, SanitizePolicy};
use roadpart::{
    error_chain, partition_sharded, repartition_regions, DistributedConfig, FrameworkConfig,
    PartitionMode, Scheme,
};
use roadpart_cut::{
    gaussian_affinity_par, spectral_partition_warm_ws, CutKind, Partition, SpectralArtifacts,
    SpectralConfig,
};
use roadpart_eval::PartitionDrift;
use roadpart_linalg::{LinalgError, RecoveryLog, Workspace};
use roadpart_net::RoadGraph;
use roadpart_traffic::DensityHistory;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`StreamEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target partition count for global rebuilds.
    pub k: usize,
    /// Spectral cut used by global rebuilds (α-Cut matches the paper).
    pub cut: CutKind,
    /// How the density feed is smoothed before each probe.
    pub aggregate: AggregateKind,
    /// Drift thresholds steering the per-epoch decision.
    pub policy: DriftPolicy,
    /// Spectral settings for global rebuilds.
    pub spectral: SpectralConfig,
    /// Settings for regional refreshes (`core::distributed`).
    pub regional: DistributedConfig,
    /// Seed global rebuilds with the previous epoch's eigenvectors and
    /// centroids. Disable only to measure the cold baseline.
    pub warm_start: bool,
    /// Self-healing knobs: deadlines, retries, quarantine thresholds.
    pub resilience: ResilienceConfig,
    /// How global rebuilds are executed: one whole-network spectral solve
    /// ([`PartitionMode::Flat`], the default) or the divide-and-conquer
    /// sharded pipeline ([`PartitionMode::Sharded`]). Sharded rebuilds skip
    /// the warm-start artifacts (each shard solves its own subgraph) but
    /// keep the same retry/degradation ladder.
    pub mode: PartitionMode,
}

impl EngineConfig {
    /// Defaults for a `k`-way engine: α-Cut, 3-snapshot window mean,
    /// default drift policy, warm starts on, default resilience posture
    /// (retries on, no deadline).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            cut: CutKind::Alpha,
            aggregate: AggregateKind::WindowMean(3),
            policy: DriftPolicy::default(),
            spectral: SpectralConfig::default(),
            regional: DistributedConfig::default(),
            warm_start: true,
            resilience: ResilienceConfig::default(),
            mode: PartitionMode::Flat,
        }
    }

    /// Switches global rebuilds to the sharded divide-and-conquer pipeline
    /// with `shards` geometric shards (`shards <= 1` keeps the flat solve).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.mode = if shards > 1 {
            PartitionMode::Sharded(roadpart::ShardConfig::new(shards))
        } else {
            PartitionMode::Flat
        };
        self
    }

    /// Re-seeds the stochastic components.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.spectral = self.spectral.with_seed(seed);
        self.regional.framework = self.regional.framework.clone().with_seed(seed ^ 0x5747);
        self
    }

    /// Replaces the resilience settings.
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Sets the thread pool used by global rebuilds and regional
    /// refreshes. Purely a performance knob: results are bit-identical at
    /// any pool size (see `roadpart_linalg::par`).
    pub fn with_pool(mut self, pool: roadpart_linalg::ThreadPool) -> Self {
        self.spectral = self.spectral.with_pool(pool);
        self.regional.framework = self.regional.framework.clone().with_pool(pool);
        self
    }

    /// Convenience for [`EngineConfig::with_pool`] from a thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_pool(roadpart_linalg::ThreadPool::new(threads))
    }
}

/// Updates accepted/repaired/dropped since the previous epoch boundary.
#[derive(Debug, Clone, Copy, Default)]
struct IngestCounters {
    accepted: usize,
    repaired: usize,
    dropped: usize,
}

/// Long-lived online repartitioning engine over one road network.
#[derive(Debug)]
pub struct StreamEngine {
    cfg: EngineConfig,
    graph: RoadGraph,
    aggregator: DensityAggregator,
    store: Arc<PartitionStore>,
    /// Densities the live partition was last built/refreshed on — the
    /// reference point for divergence probes.
    baseline: Vec<f64>,
    /// Spectral state of the last global rebuild, fed back as a warm start.
    artifacts: Option<SpectralArtifacts>,
    /// Scratch-buffer pool threaded through every global rebuild's
    /// eigensolve; warmed by the initial build, so steady-state epochs run
    /// the spectral hot loops allocation-free.
    workspace: Workspace,
    /// Retained buffer the per-epoch aggregate is written into
    /// (recycled against `baseline` at each refresh).
    agg_scratch: Vec<f64>,
    epoch: u64,
    /// Per-source quarantine state for [`Self::ingest_guarded`].
    quarantine: QuarantineTracker,
    /// Ingest accounting since the last epoch boundary.
    epoch_ingest: IngestCounters,
    /// Health reported by the most recent epoch.
    health: HealthState,
    /// Remaining solve attempts to fail with an injected `NotConverged`
    /// (test hook; see [`ResilienceConfig::inject_epoch_faults`]).
    injected_faults: usize,
}

impl StreamEngine {
    /// Builds the engine and runs the initial (cold) global partition on
    /// the graph's current features, publishing it as version 1.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidConfig`] for `k == 0`, `k` above the
    /// segment count, inconsistent drift thresholds, or invalid resilience
    /// settings; propagates initial partitioning failures.
    pub fn new(graph: RoadGraph, cfg: EngineConfig) -> Result<Self> {
        let n = graph.node_count();
        if cfg.k == 0 || cfg.k > n {
            return Err(StreamError::InvalidConfig(format!(
                "k = {} outside 1..={n}",
                cfg.k
            )));
        }
        cfg.policy.validate()?;
        cfg.resilience.validate()?;
        let aggregator = DensityAggregator::new(n, cfg.aggregate)?;
        let baseline = graph.features().to_vec();
        let inject = cfg.resilience.inject_epoch_faults;
        let mut engine = Self {
            cfg,
            graph,
            aggregator,
            store: Arc::new(PartitionStore::new(vec![0; n], 0)),
            baseline,
            artifacts: None,
            workspace: Workspace::new(),
            agg_scratch: Vec::new(),
            epoch: 0,
            quarantine: QuarantineTracker::new(),
            epoch_ingest: IngestCounters::default(),
            health: HealthState::Healthy,
            injected_faults: 0,
        };
        let densities = engine.baseline.clone();
        let (partition, _) = engine.global_repartition(&densities)?;
        engine.check_publishable(&partition)?;
        engine.store = Arc::new(PartitionStore::new(partition.labels().to_vec(), 0));
        // Fault injection arms only after the initial build: the hook
        // exercises the *epoch* loop's recovery, not construction.
        engine.injected_faults = inject;
        Ok(engine)
    }

    /// Shared handle to the snapshot store for concurrent readers.
    pub fn store(&self) -> Arc<PartitionStore> {
        Arc::clone(&self.store)
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// The configured engine settings.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Health reported by the most recent epoch ([`HealthState::Healthy`]
    /// before the first).
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Per-source quarantine state built up by [`Self::ingest_guarded`].
    pub fn quarantine(&self) -> &QuarantineTracker {
        &self.quarantine
    }

    /// Arms the solve-fault injector: the next `n` solve attempts fail with
    /// a synthetic `NotConverged` before reaching the real solver. Test
    /// hook for exercising retry and degradation mid-stream.
    pub fn arm_fault_injection(&mut self, n: usize) {
        self.injected_faults = n;
    }

    /// Ingests one per-segment density snapshot from a trusted feed.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidUpdate`] on malformed snapshots.
    pub fn ingest(&mut self, densities: &[f64]) -> Result<()> {
        self.aggregator.push(densities)?;
        self.epoch_ingest.accepted += 1;
        Ok(())
    }

    /// Ingests one snapshot from an *untrusted* source, routing it through
    /// `core::sanitize` instead of rejecting outright: NaN/infinite values
    /// are replaced with the snapshot median, negatives are clamped to
    /// zero, and short/long snapshots are padded/truncated. Repaired and
    /// unrepairable snapshots count as strikes against `source`; after
    /// [`ResilienceConfig::quarantine_threshold`] consecutive strikes the
    /// source is quarantined and its snapshots are dropped until it
    /// delivers [`ResilienceConfig::rehab_clean`] consecutive clean ones.
    /// With [`ResilienceConfig::stale_after`] set, bit-identical repeats
    /// are treated as a stuck sensor and dropped the same way.
    ///
    /// Returns how the snapshot was disposed of; dropping is *not* an error
    /// (the quarantine doing its job), but an epoch in which every offered
    /// update was dropped fails with [`StreamError::QuarantineOverflow`].
    ///
    /// # Errors
    /// Propagates aggregator failures (cannot happen for sanitized values).
    pub fn ingest_guarded(&mut self, source: &str, densities: &[f64]) -> Result<IngestVerdict> {
        let n = self.graph.node_count();
        let sanitized = sanitize_densities(densities, n, SanitizePolicy::ClampAndWarn);
        let (clean, unrepairable, repaired) = match sanitized {
            Ok((clean, report)) => (Some(clean), false, !report.is_clean()),
            // Sanitization refuses (e.g. an empty snapshot): unrepairable.
            Err(_) => (None, true, false),
        };
        let disposition = self.quarantine.track(
            source,
            densities,
            repaired,
            unrepairable,
            &self.cfg.resilience,
        );
        match clean {
            // Unrepairable snapshots never reach here accepted: the tracker
            // maps them to `Drop`, so an accept always carries a sanitized
            // buffer.
            Some(clean) if disposition != TrackDisposition::Drop => {
                self.aggregator.push(&clean)?;
                if disposition == TrackDisposition::AcceptRepaired {
                    self.epoch_ingest.repaired += 1;
                    Ok(IngestVerdict::Repaired)
                } else {
                    self.epoch_ingest.accepted += 1;
                    Ok(IngestVerdict::Clean)
                }
            }
            _ => {
                self.epoch_ingest.dropped += 1;
                Ok(IngestVerdict::Dropped)
            }
        }
    }

    /// Replays every snapshot of a recorded history into the feed.
    ///
    /// # Errors
    /// Same as [`Self::ingest`].
    pub fn ingest_history(&mut self, history: &DensityHistory) -> Result<()> {
        self.aggregator.push_history(history)?;
        self.epoch_ingest.accepted += history.len();
        Ok(())
    }

    /// Closes the current epoch: aggregate, probe, act, publish.
    ///
    /// The intended action can *degrade* down the ladder Global → Regional
    /// → NoOp: each rung gets `1 + max_retries` attempts (retryable solver
    /// failures only, with seed rotation and exponential backoff between
    /// attempts), and a blown epoch budget under [`DeadlineMode::Degrade`]
    /// skips straight to the next rung. The store is only touched by a
    /// fully validated partition; on every failure path readers keep the
    /// last good snapshot.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidUpdate`] when no densities were ever
    /// ingested; [`StreamError::QuarantineOverflow`] when every update
    /// offered this epoch was dropped; [`StreamError::DeadlineExceeded`]
    /// for a blown budget under [`DeadlineMode::Fail`]; propagates
    /// non-retryable repartitioning failures (the live snapshot is
    /// untouched on failure — the store only changes on success).
    pub fn run_epoch(&mut self) -> Result<EpochReport> {
        let t0 = Instant::now();
        let ingest = std::mem::take(&mut self.epoch_ingest);
        let quarantined_sources = self.quarantine.quarantined_sources();

        // Every offered update was dropped: the aggregate would be pure
        // stale data, and silently serving it would mask a dead feed.
        if ingest.dropped > 0
            && ingest.accepted == 0
            && ingest.repaired == 0
            && !quarantined_sources.is_empty()
        {
            return Err(StreamError::QuarantineOverflow {
                sources: quarantined_sources.len(),
                dropped: ingest.dropped,
            });
        }

        // The aggregate lands in the retained scratch buffer; on refresh it
        // becomes the new baseline and the old baseline's allocation is
        // recycled as the next epoch's scratch, so the steady state moves
        // buffers instead of allocating them.
        let mut current = std::mem::take(&mut self.agg_scratch);
        if !self.aggregator.current_into(&mut current) {
            self.agg_scratch = current;
            return Err(StreamError::InvalidUpdate(
                "epoch with no density updates ever ingested".into(),
            ));
        }
        self.epoch += 1;
        let live = self.store.read();
        let probe = DriftProbe::measure(live.labels(), &self.baseline, &current)?;
        let intended = self.cfg.policy.decide(&probe);

        let mut resilience = EpochResilience {
            budget_ms: self.cfg.resilience.epoch_budget_ms,
            accepted: ingest.accepted,
            repaired: ingest.repaired,
            dropped: ingest.dropped,
            quarantined_sources,
            ..EpochResilience::default()
        };

        let ladder: &[EpochAction] = match intended {
            EpochAction::Global => &[
                EpochAction::Global,
                EpochAction::Regional,
                EpochAction::NoOp,
            ],
            EpochAction::Regional => &[EpochAction::Regional, EpochAction::NoOp],
            EpochAction::NoOp => &[EpochAction::NoOp],
        };

        let mut executed = EpochAction::NoOp;
        let mut drift = None;
        let mut warm_started = false;
        'ladder: for &rung in ladder {
            if rung == EpochAction::NoOp {
                executed = EpochAction::NoOp;
                break;
            }
            let max_attempts = self.cfg.resilience.max_retries + 1;
            for attempt in 0..max_attempts {
                if attempt > 0 {
                    let backoff = self.cfg.resilience.backoff_ms(attempt);
                    resilience.backoff_ms_total += backoff;
                    if backoff > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(backoff / 1e3));
                    }
                }
                // Deadline gate: checked before the first attempt of each
                // rung and again before every retry.
                if let Some(budget) = self.cfg.resilience.epoch_budget_ms {
                    let elapsed = t0.elapsed().as_secs_f64() * 1e3;
                    if elapsed > budget {
                        resilience.deadline_blown = true;
                        match self.cfg.resilience.deadline_mode {
                            DeadlineMode::Fail => {
                                self.agg_scratch = current;
                                return Err(StreamError::DeadlineExceeded {
                                    budget_ms: budget,
                                    elapsed_ms: elapsed,
                                });
                            }
                            DeadlineMode::Degrade => continue 'ladder,
                        }
                    }
                }
                let seed = self.attempt_seed(rung, attempt);
                let outcome = self.attempt_action(rung, &current, attempt, live.labels());
                match outcome {
                    Ok((labels, attempt_drift, warm)) => {
                        resilience.attempts.push(EpochAttempt {
                            action: rung,
                            attempt,
                            seed,
                            succeeded: true,
                            error: None,
                        });
                        self.store.publish(labels, self.epoch);
                        drift = Some(attempt_drift);
                        warm_started = warm;
                        executed = rung;
                        break 'ladder;
                    }
                    Err(e) => {
                        let retryable = is_retryable(&e);
                        resilience.attempts.push(EpochAttempt {
                            action: rung,
                            attempt,
                            seed,
                            succeeded: false,
                            error: Some(error_chain(&e)),
                        });
                        if !retryable {
                            // Structural failure: another seed or a cheaper
                            // rung cannot fix a bug — propagate. The store
                            // is untouched.
                            self.agg_scratch = current;
                            return Err(e);
                        }
                        if attempt + 1 == max_attempts {
                            // Retry budget exhausted: degrade to the next
                            // rung of the ladder.
                            continue 'ladder;
                        }
                    }
                }
            }
        }

        if executed == EpochAction::NoOp {
            // Served on (either intended, or fully degraded): the aggregate
            // buffer goes back to scratch and the baseline stands.
            self.agg_scratch = current;
        } else {
            // Refreshed: the aggregate becomes the new baseline and the old
            // baseline's allocation is recycled as next epoch's scratch.
            self.agg_scratch = std::mem::replace(&mut self.baseline, current);
        }

        resilience.degraded = executed != intended;
        self.health = if resilience.degraded || resilience.deadline_blown {
            HealthState::Degraded
        } else if self.quarantine.any_quarantined() {
            HealthState::Quarantining
        } else {
            HealthState::Healthy
        };

        let after = self.store.read();
        Ok(EpochReport {
            epoch: self.epoch,
            action: executed,
            intended,
            probe,
            version: after.version,
            k: after.k,
            drift,
            warm_started,
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
            health: self.health,
            resilience,
        })
    }

    /// The seed a given rung/attempt pair runs under (attempt 0 is the
    /// configured seed; retries rotate by the configured stride).
    fn attempt_seed(&self, rung: EpochAction, attempt: usize) -> u64 {
        let base = match rung {
            EpochAction::Global => self.cfg.spectral.kmeans.seed,
            _ => self.cfg.regional.framework.mining.seed,
        };
        base.wrapping_add(attempt as u64 * self.cfg.resilience.seed_stride)
    }

    /// Executes one ladder rung once, returning the labels to publish, the
    /// old-vs-new drift, and whether a warm start was applied. Validates
    /// the partition before returning, so a success here is publishable.
    fn attempt_action(
        &mut self,
        rung: EpochAction,
        current: &[f64],
        attempt: usize,
        live_labels: &[usize],
    ) -> Result<(Vec<usize>, PartitionDrift, bool)> {
        self.injected_fault()?;
        match rung {
            EpochAction::Global => {
                let (partition, warm) = if attempt == 0 {
                    self.global_repartition(current)?
                } else {
                    let seed = self.attempt_seed(rung, attempt);
                    let rotated = self.cfg.spectral.clone().with_seed(seed);
                    self.global_repartition_with(current, &rotated)?
                };
                self.check_publishable(&partition)?;
                let drift = PartitionDrift::between(live_labels, partition.labels());
                Ok((partition.labels().to_vec(), drift, warm))
            }
            EpochAction::Regional => {
                self.graph.set_features(current.to_vec())?;
                let prev = Partition::from_labels(live_labels);
                let regional = if attempt == 0 {
                    self.cfg.regional.clone()
                } else {
                    let mut r = self.cfg.regional.clone();
                    r.framework = r.framework.with_seed(self.attempt_seed(rung, attempt));
                    r
                };
                let out = repartition_regions(&self.graph, &prev, &regional)?;
                self.check_publishable(&out.partition)?;
                Ok((out.partition.labels().to_vec(), out.drift, false))
            }
            // Defensive: the epoch loop never dispatches NoOp here, but a
            // panic is not an acceptable failure mode on the serve path.
            EpochAction::NoOp => Err(StreamError::InvalidConfig(
                "internal: NoOp is not a solve rung".into(),
            )),
        }
    }

    /// Consumes one armed injected fault, if any (test hook).
    fn injected_fault(&mut self) -> Result<()> {
        if self.injected_faults > 0 {
            self.injected_faults -= 1;
            return Err(StreamError::Framework(roadpart::RoadpartError::Linalg(
                LinalgError::NotConverged {
                    iterations: 0,
                    context: "injected epoch fault",
                },
            )));
        }
        Ok(())
    }

    /// Epoch-boundary invariant gate (active under `debug_assertions` or
    /// the `strict-invariants` feature): a partition must be structurally
    /// valid and cover every segment before it may reach the store.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidUpdate`] naming the violated invariant.
    fn check_publishable(&self, partition: &Partition) -> Result<()> {
        if !STRICT_INVARIANTS {
            return Ok(());
        }
        partition.validate().map_err(|e| {
            StreamError::InvalidUpdate(format!("epoch invariant violated before publish: {e}"))
        })?;
        if partition.len() != self.graph.node_count() {
            return Err(StreamError::InvalidUpdate(format!(
                "epoch invariant violated before publish: partition covers {} segments \
                 but the graph has {}",
                partition.len(),
                self.graph.node_count()
            )));
        }
        Ok(())
    }

    /// Full spectral rebuild on `densities` with the configured spectral
    /// settings.
    fn global_repartition(&mut self, densities: &[f64]) -> Result<(Partition, bool)> {
        let spectral = self.cfg.spectral.clone();
        self.global_repartition_with(densities, &spectral)
    }

    /// Full spectral rebuild on `densities` under explicit spectral
    /// settings (retries pass a seed-rotated clone), reusing (and then
    /// replacing) the cached warm-start artifacts. Returns the partition
    /// and whether a warm start was actually applied.
    fn global_repartition_with(
        &mut self,
        densities: &[f64],
        spectral: &SpectralConfig,
    ) -> Result<(Partition, bool)> {
        self.graph.set_features(densities.to_vec())?;
        if let PartitionMode::Sharded(shard) = &self.cfg.mode {
            // Divide-and-conquer rebuild: per-shard solves + cross-shard
            // condensation. The scheme mirrors the configured cut (no
            // supergraph mining — the engine's feed is already a dual
            // graph with live densities). Warm-start artifacts do not
            // apply across shard subgraphs; seed rotation still works
            // because the shard seeds derive from the spectral seed.
            let scheme = match self.cfg.cut {
                CutKind::Alpha => Scheme::AG,
                CutKind::Normalized => Scheme::NG,
            };
            let mut framework = FrameworkConfig {
                spectral: spectral.clone(),
                ..FrameworkConfig::default()
            };
            framework.mining.seed = spectral.kmeans.seed;
            let out = partition_sharded(
                &self.graph,
                scheme,
                self.cfg.k.min(self.graph.node_count()),
                &framework,
                shard,
            )
            .map_err(StreamError::Framework)?;
            return Ok((out.partition, false));
        }
        let affinity = gaussian_affinity_par(
            self.graph.adjacency(),
            self.graph.features(),
            &spectral.pool(),
        )?;
        let warm = if self.cfg.warm_start {
            self.artifacts.as_ref()
        } else {
            None
        };
        let warm_used = warm.is_some();
        let mut log = RecoveryLog::new();
        let (partition, artifacts) = spectral_partition_warm_ws(
            &affinity,
            self.cfg.k.min(self.graph.node_count()),
            self.cfg.cut,
            spectral,
            warm,
            &mut log,
            &mut self.workspace,
        )?;
        self.artifacts = Some(artifacts);
        Ok((partition, warm_used))
    }
}

/// True for failures where another attempt (new seed) or a cheaper rung can
/// plausibly succeed; structural errors propagate immediately — the same
/// split the batch supervisor makes.
fn is_retryable(err: &StreamError) -> bool {
    matches!(
        err,
        StreamError::Framework(
            roadpart::RoadpartError::Linalg(_)
                | roadpart::RoadpartError::Cut(_)
                | roadpart::RoadpartError::Cluster(_)
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadpart_linalg::CsrMatrix;

    /// Path of `plateaus` density plateaus, 8 segments each.
    fn plateau_graph(plateaus: usize) -> RoadGraph {
        let n = plateaus * 8;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let adj = CsrMatrix::from_undirected_edges(n, &edges).unwrap();
        let feats: Vec<f64> = (0..n).map(|i| (i / 8) as f64 * 0.4 + 0.05).collect();
        RoadGraph::from_parts(adj, feats, vec![]).unwrap()
    }

    /// Fine stripes across the plateaus: forces a global rebuild.
    fn flipped(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if i % 2 == 0 { 0.05 } else { 0.9 })
            .collect()
    }

    #[test]
    fn initial_partition_is_published_as_version_one() {
        let engine = StreamEngine::new(plateau_graph(3), EngineConfig::new(3)).unwrap();
        let snap = engine.store().read();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.len(), 24);
        assert_eq!(snap.k, 3);
        assert_eq!(engine.health(), HealthState::Healthy);
    }

    #[test]
    fn stable_feed_yields_noop_epochs_without_version_bumps() {
        let graph = plateau_graph(3);
        let baseline = graph.features().to_vec();
        let mut engine = StreamEngine::new(graph, EngineConfig::new(3)).unwrap();
        for _ in 0..3 {
            engine.ingest(&baseline).unwrap();
            let report = engine.run_epoch().unwrap();
            assert_eq!(report.action, EpochAction::NoOp);
            assert_eq!(report.intended, EpochAction::NoOp);
            assert_eq!(report.version, 1, "no-op must not republish");
            assert!(report.drift.is_none());
            assert_eq!(report.health, HealthState::Healthy);
            assert!(!report.resilience.degraded);
            assert!(report.resilience.attempts.is_empty());
            assert_eq!(report.resilience.accepted, 1);
        }
        assert_eq!(engine.epochs(), 3);
    }

    #[test]
    fn inverted_densities_force_a_warm_global_rebuild() {
        let graph = plateau_graph(3);
        let n = graph.node_count();
        let mut engine = StreamEngine::new(graph, EngineConfig::new(3)).unwrap();
        let feed = flipped(n);
        for _ in 0..3 {
            engine.ingest(&feed).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.action, EpochAction::Global);
        assert!(report.warm_started, "artifacts from the initial build");
        assert_eq!(report.version, 2);
        assert!(report.drift.is_some());
        assert_eq!(report.resilience.attempts.len(), 1);
        assert!(report.resilience.attempts[0].succeeded);
    }

    #[test]
    fn warm_global_rebuilds_recycle_the_workspace() {
        let graph = plateau_graph(3);
        let mut cfg = EngineConfig::new(3);
        // Force the iterative solver (24 nodes is far below the default
        // dense cutoff) so the workspace actually carries the hot loops.
        cfg.spectral.eigen.dense_cutoff = 4;
        let n = graph.node_count();
        let mut engine = StreamEngine::new(graph, cfg).unwrap();
        let flipped = flipped(n);
        // Two warm solves on the same densities let the buffer working set
        // stabilize; the third must then be served entirely from the pool.
        let _ = engine.global_repartition(&flipped).unwrap();
        let _ = engine.global_repartition(&flipped).unwrap();
        let warm_fresh = engine.workspace.fresh_allocations();
        let _ = engine.global_repartition(&flipped).unwrap();
        assert_eq!(
            engine.workspace.fresh_allocations(),
            warm_fresh,
            "steady-state global rebuild must not allocate workspace buffers"
        );
        assert!(engine.workspace.takes() > 0, "workspace is actually in use");
    }

    #[test]
    fn sharded_mode_rebuilds_and_publishes() {
        let graph = plateau_graph(4);
        let n = graph.node_count();
        let cfg = EngineConfig::new(4).with_shards(2);
        let mut engine = StreamEngine::new(graph, cfg).unwrap();
        let snap = engine.store().read();
        assert_eq!(snap.k, 4);
        assert_eq!(snap.len(), n);
        for _ in 0..3 {
            engine.ingest(&flipped(n)).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.action, EpochAction::Global);
        assert!(!report.warm_started, "sharded rebuilds skip warm starts");
        assert_eq!(report.version, 2);
        assert_eq!(engine.store().read().k, 4);
    }

    #[test]
    fn sharded_mode_recovers_from_injected_faults() {
        let graph = plateau_graph(4);
        let n = graph.node_count();
        let cfg = EngineConfig::new(4).with_shards(2);
        let mut engine = StreamEngine::new(graph, cfg).unwrap();
        engine.arm_fault_injection(1);
        for _ in 0..3 {
            engine.ingest(&flipped(n)).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.action, EpochAction::Global, "retry, not degrade");
        assert_eq!(report.resilience.attempts.len(), 2);
        assert!(report.resilience.attempts[1].succeeded);
        assert_eq!(report.health, HealthState::Healthy);
    }

    #[test]
    fn epoch_without_any_ingest_is_an_error() {
        let mut engine = StreamEngine::new(plateau_graph(2), EngineConfig::new(2)).unwrap();
        assert!(engine.run_epoch().is_err());
    }

    #[test]
    fn bad_config_is_rejected() {
        assert!(StreamEngine::new(plateau_graph(2), EngineConfig::new(0)).is_err());
        assert!(StreamEngine::new(plateau_graph(2), EngineConfig::new(1000)).is_err());
        let mut cfg = EngineConfig::new(2);
        cfg.policy.noop_divergence = 2.0; // above global_divergence
        assert!(StreamEngine::new(plateau_graph(2), cfg).is_err());
        let mut cfg = EngineConfig::new(2);
        cfg.resilience.quarantine_threshold = 0;
        assert!(StreamEngine::new(plateau_graph(2), cfg).is_err());
    }

    #[test]
    fn injected_fault_is_retried_and_recovers_on_the_same_rung() {
        let graph = plateau_graph(3);
        let n = graph.node_count();
        let mut engine = StreamEngine::new(graph, EngineConfig::new(3)).unwrap();
        engine.arm_fault_injection(1);
        for _ in 0..3 {
            engine.ingest(&flipped(n)).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.action, EpochAction::Global, "retry, not degrade");
        assert!(!report.resilience.degraded);
        assert_eq!(report.resilience.attempts.len(), 2);
        assert!(!report.resilience.attempts[0].succeeded);
        assert!(report.resilience.attempts[0]
            .error
            .as_deref()
            .unwrap()
            .contains("injected epoch fault"));
        assert!(report.resilience.attempts[1].succeeded);
        assert_ne!(
            report.resilience.attempts[0].seed, report.resilience.attempts[1].seed,
            "retries must rotate the seed"
        );
        assert_eq!(report.health, HealthState::Healthy, "recovered in-rung");
    }

    #[test]
    fn exhausted_retries_degrade_down_the_ladder() {
        let graph = plateau_graph(3);
        let n = graph.node_count();
        let mut cfg = EngineConfig::new(3);
        cfg.resilience.max_retries = 1;
        let mut engine = StreamEngine::new(graph, cfg).unwrap();
        // Enough faults to exhaust Global (2 attempts) and Regional (2).
        engine.arm_fault_injection(4);
        for _ in 0..3 {
            engine.ingest(&flipped(n)).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.intended, EpochAction::Global);
        assert_eq!(report.action, EpochAction::NoOp, "fully degraded");
        assert!(report.resilience.degraded);
        assert_eq!(report.resilience.attempts.len(), 4);
        assert_eq!(report.health, HealthState::Degraded);
        assert_eq!(report.version, 1, "no publish on a degraded no-op");
        // The next epoch (faults exhausted) recovers on its own.
        for _ in 0..3 {
            engine.ingest(&flipped(n)).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.action, EpochAction::Global);
        assert_eq!(report.health, HealthState::Healthy);
        assert_eq!(report.version, 2);
    }

    #[test]
    fn zero_budget_degrades_or_fails_by_mode() {
        let graph = plateau_graph(3);
        let n = graph.node_count();
        let mut cfg = EngineConfig::new(3);
        cfg.resilience.epoch_budget_ms = Some(0.0);
        let mut engine = StreamEngine::new(graph, cfg).unwrap();
        for _ in 0..3 {
            engine.ingest(&flipped(n)).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.intended, EpochAction::Global);
        assert_eq!(report.action, EpochAction::NoOp);
        assert!(report.resilience.deadline_blown);
        assert_eq!(report.health, HealthState::Degraded);

        let graph = plateau_graph(3);
        let mut cfg = EngineConfig::new(3);
        cfg.resilience.epoch_budget_ms = Some(0.0);
        cfg.resilience.deadline_mode = DeadlineMode::Fail;
        let mut engine = StreamEngine::new(graph, cfg).unwrap();
        for _ in 0..3 {
            engine.ingest(&flipped(n)).unwrap();
        }
        match engine.run_epoch() {
            Err(StreamError::DeadlineExceeded { budget_ms, .. }) => {
                assert_eq!(budget_ms, 0.0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn guarded_ingest_repairs_then_quarantines_then_overflows() {
        let graph = plateau_graph(3);
        let baseline = graph.features().to_vec();
        let mut engine = StreamEngine::new(graph, EngineConfig::new(3)).unwrap();

        let mut corrupt = baseline.clone();
        corrupt[0] = f64::NAN;
        corrupt[1] = -5.0;
        // Three straight corrupt snapshots: repaired, repaired, quarantined.
        assert_eq!(
            engine.ingest_guarded("bad", &corrupt).unwrap(),
            IngestVerdict::Repaired
        );
        let mut corrupt2 = corrupt.clone();
        corrupt2[2] = f64::INFINITY;
        assert_eq!(
            engine.ingest_guarded("bad", &corrupt2).unwrap(),
            IngestVerdict::Repaired
        );
        let mut corrupt3 = corrupt.clone();
        corrupt3[3] = -1.0;
        assert_eq!(
            engine.ingest_guarded("bad", &corrupt3).unwrap(),
            IngestVerdict::Dropped
        );
        assert!(engine.quarantine().any_quarantined());
        // A clean source keeps the epoch healthy enough to run.
        assert_eq!(
            engine.ingest_guarded("good", &baseline).unwrap(),
            IngestVerdict::Clean
        );
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.health, HealthState::Quarantining);
        assert_eq!(report.resilience.repaired, 2);
        assert_eq!(report.resilience.dropped, 1);
        assert_eq!(report.resilience.accepted, 1);
        assert_eq!(
            report.resilience.quarantined_sources,
            vec!["bad".to_string()]
        );

        // Next epoch: only the quarantined source reports — overflow.
        assert_eq!(
            engine.ingest_guarded("bad", &corrupt).unwrap(),
            IngestVerdict::Dropped
        );
        match engine.run_epoch() {
            Err(StreamError::QuarantineOverflow { sources, dropped }) => {
                assert_eq!((sources, dropped), (1, 1));
            }
            other => panic!("expected QuarantineOverflow, got {other:?}"),
        }
        // After the error the engine still serves and can run clean epochs.
        engine.ingest(&baseline).unwrap();
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.action, EpochAction::NoOp);
    }

    #[test]
    fn empty_guarded_snapshots_are_unrepairable_drops() {
        let graph = plateau_graph(2);
        let mut engine = StreamEngine::new(graph, EngineConfig::new(2)).unwrap();
        assert_eq!(
            engine.ingest_guarded("s", &[]).unwrap(),
            IngestVerdict::Dropped
        );
        let stats = engine.quarantine().source("s").unwrap();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.consecutive_malformed, 1);
    }

    #[test]
    fn guarded_ingest_pads_short_snapshots() {
        let graph = plateau_graph(2);
        let baseline = graph.features().to_vec();
        let mut engine = StreamEngine::new(graph, EngineConfig::new(2)).unwrap();
        // A short snapshot is repaired (padded), not rejected.
        assert_eq!(
            engine.ingest_guarded("s", &baseline[..10]).unwrap(),
            IngestVerdict::Repaired
        );
        engine.ingest(&baseline).unwrap();
        engine.run_epoch().unwrap();
    }
}
