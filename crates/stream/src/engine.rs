//! The epoch-based online repartitioning engine.
//!
//! Lifecycle per epoch:
//!
//! 1. the caller [`ingest`](StreamEngine::ingest)s density updates as they
//!    arrive (any number per epoch, including zero);
//! 2. [`run_epoch`](StreamEngine::run_epoch) reduces the feed to one
//!    aggregate density per segment, probes drift against the baseline
//!    captured at the last refresh, and acts:
//!    [`EpochAction::NoOp`] serves on, [`EpochAction::Regional`] refreshes
//!    each region on its own subgraph, [`EpochAction::Global`] rebuilds the
//!    whole partition with a warm-started spectral solve;
//! 3. any new partition is published to the [`PartitionStore`] — readers
//!    holding the store handle never block and never see a partial update.
//!
//! Warm starts make the expensive path cheap: the previous epoch's
//! eigenvectors seed the Lanczos iteration and its centroids seed the
//! eigenspace k-means ([`roadpart_cut::spectral_partition_warm`]), so a
//! global rebuild after modest drift converges in a fraction of the cold
//! iteration count.

use crate::aggregate::{AggregateKind, DensityAggregator};
use crate::drift::{DriftPolicy, DriftProbe, EpochAction};
use crate::error::{Result, StreamError};
use crate::report::EpochReport;
use crate::snapshot::PartitionStore;
use roadpart::pipeline::STRICT_INVARIANTS;
use roadpart::{repartition_regions, DistributedConfig};
use roadpart_cut::{
    gaussian_affinity_par, spectral_partition_warm_ws, CutKind, Partition, SpectralArtifacts,
    SpectralConfig,
};
use roadpart_eval::PartitionDrift;
use roadpart_linalg::{RecoveryLog, Workspace};
use roadpart_net::RoadGraph;
use roadpart_traffic::DensityHistory;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`StreamEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target partition count for global rebuilds.
    pub k: usize,
    /// Spectral cut used by global rebuilds (α-Cut matches the paper).
    pub cut: CutKind,
    /// How the density feed is smoothed before each probe.
    pub aggregate: AggregateKind,
    /// Drift thresholds steering the per-epoch decision.
    pub policy: DriftPolicy,
    /// Spectral settings for global rebuilds.
    pub spectral: SpectralConfig,
    /// Settings for regional refreshes (`core::distributed`).
    pub regional: DistributedConfig,
    /// Seed global rebuilds with the previous epoch's eigenvectors and
    /// centroids. Disable only to measure the cold baseline.
    pub warm_start: bool,
}

impl EngineConfig {
    /// Defaults for a `k`-way engine: α-Cut, 3-snapshot window mean,
    /// default drift policy, warm starts on.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            cut: CutKind::Alpha,
            aggregate: AggregateKind::WindowMean(3),
            policy: DriftPolicy::default(),
            spectral: SpectralConfig::default(),
            regional: DistributedConfig::default(),
            warm_start: true,
        }
    }

    /// Re-seeds the stochastic components.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.spectral = self.spectral.with_seed(seed);
        self.regional.framework = self.regional.framework.clone().with_seed(seed ^ 0x5747);
        self
    }

    /// Sets the thread pool used by global rebuilds and regional
    /// refreshes. Purely a performance knob: results are bit-identical at
    /// any pool size (see `roadpart_linalg::par`).
    pub fn with_pool(mut self, pool: roadpart_linalg::ThreadPool) -> Self {
        self.spectral = self.spectral.with_pool(pool);
        self.regional.framework = self.regional.framework.clone().with_pool(pool);
        self
    }

    /// Convenience for [`EngineConfig::with_pool`] from a thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_pool(roadpart_linalg::ThreadPool::new(threads))
    }
}

/// Long-lived online repartitioning engine over one road network.
#[derive(Debug)]
pub struct StreamEngine {
    cfg: EngineConfig,
    graph: RoadGraph,
    aggregator: DensityAggregator,
    store: Arc<PartitionStore>,
    /// Densities the live partition was last built/refreshed on — the
    /// reference point for divergence probes.
    baseline: Vec<f64>,
    /// Spectral state of the last global rebuild, fed back as a warm start.
    artifacts: Option<SpectralArtifacts>,
    /// Scratch-buffer pool threaded through every global rebuild's
    /// eigensolve; warmed by the initial build, so steady-state epochs run
    /// the spectral hot loops allocation-free.
    workspace: Workspace,
    /// Retained buffer the per-epoch aggregate is written into
    /// (recycled against `baseline` at each refresh).
    agg_scratch: Vec<f64>,
    epoch: u64,
}

impl StreamEngine {
    /// Builds the engine and runs the initial (cold) global partition on
    /// the graph's current features, publishing it as version 1.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidConfig`] for `k == 0`, `k` above the
    /// segment count, or inconsistent drift thresholds; propagates initial
    /// partitioning failures.
    pub fn new(graph: RoadGraph, cfg: EngineConfig) -> Result<Self> {
        let n = graph.node_count();
        if cfg.k == 0 || cfg.k > n {
            return Err(StreamError::InvalidConfig(format!(
                "k = {} outside 1..={n}",
                cfg.k
            )));
        }
        cfg.policy.validate()?;
        let aggregator = DensityAggregator::new(n, cfg.aggregate)?;
        let baseline = graph.features().to_vec();
        let mut engine = Self {
            cfg,
            graph,
            aggregator,
            store: Arc::new(PartitionStore::new(vec![0; n], 0)),
            baseline,
            artifacts: None,
            workspace: Workspace::new(),
            agg_scratch: Vec::new(),
            epoch: 0,
        };
        let densities = engine.baseline.clone();
        let (partition, _) = engine.global_repartition(&densities)?;
        engine.check_publishable(&partition)?;
        engine.store = Arc::new(PartitionStore::new(partition.labels().to_vec(), 0));
        Ok(engine)
    }

    /// Shared handle to the snapshot store for concurrent readers.
    pub fn store(&self) -> Arc<PartitionStore> {
        Arc::clone(&self.store)
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// The configured engine settings.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Ingests one per-segment density snapshot.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidUpdate`] on malformed snapshots.
    pub fn ingest(&mut self, densities: &[f64]) -> Result<()> {
        self.aggregator.push(densities)
    }

    /// Replays every snapshot of a recorded history into the feed.
    ///
    /// # Errors
    /// Same as [`Self::ingest`].
    pub fn ingest_history(&mut self, history: &DensityHistory) -> Result<()> {
        self.aggregator.push_history(history)
    }

    /// Closes the current epoch: aggregate, probe, act, publish.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidUpdate`] when no densities were ever
    /// ingested; propagates repartitioning failures (the live snapshot is
    /// untouched on failure — the store only changes on success).
    pub fn run_epoch(&mut self) -> Result<EpochReport> {
        let t0 = Instant::now();
        // The aggregate lands in the retained scratch buffer; on refresh it
        // becomes the new baseline and the old baseline's allocation is
        // recycled as the next epoch's scratch, so the steady state moves
        // buffers instead of allocating them.
        let mut current = std::mem::take(&mut self.agg_scratch);
        if !self.aggregator.current_into(&mut current) {
            self.agg_scratch = current;
            return Err(StreamError::InvalidUpdate(
                "epoch with no density updates ever ingested".into(),
            ));
        }
        self.epoch += 1;
        let live = self.store.read();
        let probe = DriftProbe::measure(live.labels(), &self.baseline, &current)?;
        let action = self.cfg.policy.decide(&probe);

        let mut drift = None;
        let mut warm_started = false;
        match action {
            EpochAction::NoOp => {
                self.agg_scratch = current;
            }
            EpochAction::Regional => {
                self.graph.set_features(current.clone())?;
                let prev = Partition::from_labels(live.labels());
                let out = repartition_regions(&self.graph, &prev, &self.cfg.regional)?;
                self.check_publishable(&out.partition)?;
                self.store
                    .publish(out.partition.labels().to_vec(), self.epoch);
                drift = Some(out.drift);
                self.agg_scratch = std::mem::replace(&mut self.baseline, current);
            }
            EpochAction::Global => {
                let (partition, warm) = self.global_repartition(&current)?;
                warm_started = warm;
                self.check_publishable(&partition)?;
                drift = Some(PartitionDrift::between(live.labels(), partition.labels()));
                self.store.publish(partition.labels().to_vec(), self.epoch);
                self.agg_scratch = std::mem::replace(&mut self.baseline, current);
            }
        }

        let after = self.store.read();
        Ok(EpochReport {
            epoch: self.epoch,
            action,
            probe,
            version: after.version,
            k: after.k,
            drift,
            warm_started,
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Epoch-boundary invariant gate (active under `debug_assertions` or
    /// the `strict-invariants` feature): a partition must be structurally
    /// valid and cover every segment before it may reach the store.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidUpdate`] naming the violated invariant.
    fn check_publishable(&self, partition: &Partition) -> Result<()> {
        if !STRICT_INVARIANTS {
            return Ok(());
        }
        partition.validate().map_err(|e| {
            StreamError::InvalidUpdate(format!("epoch invariant violated before publish: {e}"))
        })?;
        if partition.len() != self.graph.node_count() {
            return Err(StreamError::InvalidUpdate(format!(
                "epoch invariant violated before publish: partition covers {} segments \
                 but the graph has {}",
                partition.len(),
                self.graph.node_count()
            )));
        }
        Ok(())
    }

    /// Full spectral rebuild on `densities`, reusing (and then replacing)
    /// the cached warm-start artifacts. Returns the partition and whether a
    /// warm start was actually applied.
    fn global_repartition(&mut self, densities: &[f64]) -> Result<(Partition, bool)> {
        self.graph.set_features(densities.to_vec())?;
        let affinity = gaussian_affinity_par(
            self.graph.adjacency(),
            self.graph.features(),
            &self.cfg.spectral.pool(),
        )?;
        let warm = if self.cfg.warm_start {
            self.artifacts.as_ref()
        } else {
            None
        };
        let warm_used = warm.is_some();
        let mut log = RecoveryLog::new();
        let (partition, artifacts) = spectral_partition_warm_ws(
            &affinity,
            self.cfg.k.min(self.graph.node_count()),
            self.cfg.cut,
            &self.cfg.spectral,
            warm,
            &mut log,
            &mut self.workspace,
        )?;
        self.artifacts = Some(artifacts);
        Ok((partition, warm_used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadpart_linalg::CsrMatrix;

    /// Path of `plateaus` density plateaus, 8 segments each.
    fn plateau_graph(plateaus: usize) -> RoadGraph {
        let n = plateaus * 8;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let adj = CsrMatrix::from_undirected_edges(n, &edges).unwrap();
        let feats: Vec<f64> = (0..n).map(|i| (i / 8) as f64 * 0.4 + 0.05).collect();
        RoadGraph::from_parts(adj, feats, vec![]).unwrap()
    }

    #[test]
    fn initial_partition_is_published_as_version_one() {
        let engine = StreamEngine::new(plateau_graph(3), EngineConfig::new(3)).unwrap();
        let snap = engine.store().read();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.len(), 24);
        assert_eq!(snap.k, 3);
    }

    #[test]
    fn stable_feed_yields_noop_epochs_without_version_bumps() {
        let graph = plateau_graph(3);
        let baseline = graph.features().to_vec();
        let mut engine = StreamEngine::new(graph, EngineConfig::new(3)).unwrap();
        for _ in 0..3 {
            engine.ingest(&baseline).unwrap();
            let report = engine.run_epoch().unwrap();
            assert_eq!(report.action, EpochAction::NoOp);
            assert_eq!(report.version, 1, "no-op must not republish");
            assert!(report.drift.is_none());
        }
        assert_eq!(engine.epochs(), 3);
    }

    #[test]
    fn inverted_densities_force_a_warm_global_rebuild() {
        let graph = plateau_graph(3);
        let n = graph.node_count();
        let mut engine = StreamEngine::new(graph, EngineConfig::new(3)).unwrap();
        // Flip the congestion landscape: fine stripes across old regions.
        let flipped: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.05 } else { 0.9 })
            .collect();
        for _ in 0..3 {
            engine.ingest(&flipped).unwrap();
        }
        let report = engine.run_epoch().unwrap();
        assert_eq!(report.action, EpochAction::Global);
        assert!(report.warm_started, "artifacts from the initial build");
        assert_eq!(report.version, 2);
        assert!(report.drift.is_some());
    }

    #[test]
    fn warm_global_rebuilds_recycle_the_workspace() {
        let graph = plateau_graph(3);
        let mut cfg = EngineConfig::new(3);
        // Force the iterative solver (24 nodes is far below the default
        // dense cutoff) so the workspace actually carries the hot loops.
        cfg.spectral.eigen.dense_cutoff = 4;
        let n = graph.node_count();
        let mut engine = StreamEngine::new(graph, cfg).unwrap();
        let flipped: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.05 } else { 0.9 })
            .collect();
        // Two warm solves on the same densities let the buffer working set
        // stabilize; the third must then be served entirely from the pool.
        let _ = engine.global_repartition(&flipped).unwrap();
        let _ = engine.global_repartition(&flipped).unwrap();
        let warm_fresh = engine.workspace.fresh_allocations();
        let _ = engine.global_repartition(&flipped).unwrap();
        assert_eq!(
            engine.workspace.fresh_allocations(),
            warm_fresh,
            "steady-state global rebuild must not allocate workspace buffers"
        );
        assert!(engine.workspace.takes() > 0, "workspace is actually in use");
    }

    #[test]
    fn epoch_without_any_ingest_is_an_error() {
        let mut engine = StreamEngine::new(plateau_graph(2), EngineConfig::new(2)).unwrap();
        assert!(engine.run_epoch().is_err());
    }

    #[test]
    fn bad_config_is_rejected() {
        assert!(StreamEngine::new(plateau_graph(2), EngineConfig::new(0)).is_err());
        assert!(StreamEngine::new(plateau_graph(2), EngineConfig::new(1000)).is_err());
        let mut cfg = EngineConfig::new(2);
        cfg.policy.noop_divergence = 2.0; // above global_divergence
        assert!(StreamEngine::new(plateau_graph(2), cfg).is_err());
    }
}
