//! Unified error type for the streaming layer.

use std::fmt;

/// Errors surfaced by the online repartitioning engine.
#[derive(Debug)]
pub enum StreamError {
    /// Configuration violates a documented precondition.
    InvalidConfig(String),
    /// A density update is structurally unusable (wrong length, non-finite).
    InvalidUpdate(String),
    /// The epoch wall-clock budget expired under
    /// [`crate::health::DeadlineMode::Fail`] before the intended action ran.
    DeadlineExceeded {
        /// The configured budget, milliseconds.
        budget_ms: f64,
        /// Wall-clock actually consumed when the budget check fired.
        elapsed_ms: f64,
    },
    /// Every update offered this epoch was dropped by source quarantine —
    /// the engine has no trustworthy input left to aggregate.
    QuarantineOverflow {
        /// Number of quarantined sources.
        sources: usize,
        /// Updates dropped since the previous epoch.
        dropped: usize,
    },
    /// A failure in the underlying partitioning framework.
    Framework(roadpart::RoadpartError),
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StreamError>;

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::InvalidConfig(msg) => write!(f, "invalid stream config: {msg}"),
            StreamError::InvalidUpdate(msg) => write!(f, "invalid density update: {msg}"),
            StreamError::DeadlineExceeded {
                budget_ms,
                elapsed_ms,
            } => write!(
                f,
                "epoch deadline exceeded: {elapsed_ms:.1} ms elapsed against a \
                 {budget_ms:.1} ms budget"
            ),
            StreamError::QuarantineOverflow { sources, dropped } => write!(
                f,
                "quarantine overflow: all {dropped} updates this epoch were dropped \
                 ({sources} quarantined sources)"
            ),
            StreamError::Framework(e) => write!(f, "framework error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Framework(e) => Some(e),
            _ => None,
        }
    }
}

impl From<roadpart::RoadpartError> for StreamError {
    fn from(e: roadpart::RoadpartError) -> Self {
        StreamError::Framework(e)
    }
}

impl From<roadpart_cut::CutError> for StreamError {
    fn from(e: roadpart_cut::CutError) -> Self {
        StreamError::Framework(roadpart::RoadpartError::Cut(e))
    }
}

impl From<roadpart_cluster::ClusterError> for StreamError {
    fn from(e: roadpart_cluster::ClusterError) -> Self {
        StreamError::Framework(roadpart::RoadpartError::Cluster(e))
    }
}

impl From<roadpart_net::NetError> for StreamError {
    fn from(e: roadpart_net::NetError) -> Self {
        StreamError::Framework(roadpart::RoadpartError::Net(e))
    }
}
