//! # roadpart-stream
//!
//! Epoch-based **online repartitioning** for road networks — the serving
//! layer the paper's §6.4 sketches ("repeated partitioning ... with the
//! changing congestion measures with respect to time") grown into a
//! long-lived component:
//!
//! * [`aggregate::DensityAggregator`] — ingests per-segment density updates
//!   into sliding-window / EWMA aggregates (delegating the math to
//!   `roadpart-traffic`'s `DensityHistory` accessors);
//! * [`drift`] — cheap per-epoch drift probes (per-partition density
//!   divergence + trial-clustering NMI) mapped by a [`drift::DriftPolicy`]
//!   to *no-op*, *regional refresh*, or *global rebuild*;
//! * [`engine::StreamEngine`] — the epoch loop: probe, act, publish.
//!   Global rebuilds are **warm-started** from the previous epoch's
//!   eigenvectors and k-means centroids
//!   (`roadpart_cut::spectral_partition_warm`);
//! * [`health`] — the self-healing machinery: per-epoch deadline budgets
//!   with a graceful-degradation ladder (Global → Regional → NoOp),
//!   bounded retries with seed rotation and exponential backoff, per-source
//!   quarantine of malformed feeds, and the
//!   Healthy / Degraded / Quarantining [`health::HealthState`] signal;
//! * [`snapshot::PartitionStore`] — double-buffered, versioned
//!   `segment → partition` snapshots with O(1) non-blocking reads;
//! * [`report::EpochReport`] / [`report::StreamLog`] — machine-readable
//!   per-epoch outcomes.
//!
//! See DESIGN.md, section *"Online repartitioning & serving"*, for the
//! epoch lifecycle and the consistency model.

#![warn(missing_docs)]

pub mod aggregate;
pub mod drift;
pub mod engine;
pub mod error;
pub mod health;
pub mod report;
pub mod snapshot;

pub use aggregate::{AggregateKind, DensityAggregator};
pub use drift::{DriftPolicy, DriftProbe, EpochAction};
pub use engine::{EngineConfig, StreamEngine};
pub use error::{Result, StreamError};
pub use health::{
    DeadlineMode, EpochAttempt, EpochResilience, HealthState, IngestVerdict, QuarantineTracker,
    ResilienceConfig, SourceStats,
};
pub use report::{EpochReport, StreamLog};
pub use snapshot::{PartitionSnapshot, PartitionStore};
