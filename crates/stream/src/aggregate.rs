//! Streaming density aggregation.
//!
//! Raw per-segment density updates are noisy — a single snapshot can show a
//! segment empty between two waves of a platoon. The engine therefore
//! partitions on an *aggregate* of the recent feed, with the smoothing
//! choices exposed by [`AggregateKind`]. The aggregator wraps a
//! [`DensityHistory`] and delegates the math to its
//! [`window_mean`](DensityHistory::window_mean) /
//! [`ewma`](DensityHistory::ewma) accessors, so batch and streaming callers
//! share one implementation.

use crate::error::{Result, StreamError};
use roadpart_traffic::DensityHistory;

/// How the recent density feed is reduced to one value per segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregateKind {
    /// The latest snapshot, unsmoothed.
    Latest,
    /// Mean of the trailing `window` snapshots.
    WindowMean(usize),
    /// Exponentially weighted moving average with smoothing factor
    /// `alpha` in `(0, 1]`.
    Ewma(f64),
}

/// Accumulates per-segment density updates and serves the current
/// aggregate.
#[derive(Debug, Clone)]
pub struct DensityAggregator {
    kind: AggregateKind,
    history: DensityHistory,
    /// Snapshots retained in `history`; older ones are compacted away once
    /// the buffer doubles past this (bounded memory on unbounded feeds).
    retain: usize,
}

impl DensityAggregator {
    /// Creates an aggregator for `n_segments` segments.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidConfig`] for a zero window or an EWMA
    /// factor outside `(0, 1]`.
    pub fn new(n_segments: usize, kind: AggregateKind) -> Result<Self> {
        let retain = match kind {
            AggregateKind::Latest => 1,
            AggregateKind::WindowMean(w) => {
                if w == 0 {
                    return Err(StreamError::InvalidConfig(
                        "window mean needs a window >= 1".into(),
                    ));
                }
                w
            }
            AggregateKind::Ewma(alpha) => {
                if !(alpha > 0.0 && alpha <= 1.0) {
                    return Err(StreamError::InvalidConfig(format!(
                        "EWMA alpha must lie in (0, 1], got {alpha}"
                    )));
                }
                // EWMA weights decay geometrically; beyond ~5 mean
                // lifetimes the contribution is numerically negligible.
                ((5.0 / alpha).ceil() as usize).max(1)
            }
        };
        Ok(Self {
            kind,
            history: DensityHistory::new(n_segments),
            retain,
        })
    }

    /// The configured aggregation mode.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// Number of updates ingested and retained.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True before the first update.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Ingests one density snapshot.
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidUpdate`] on length mismatch or
    /// non-finite entries — a malformed feed must not poison the aggregate.
    pub fn push(&mut self, densities: &[f64]) -> Result<()> {
        if densities.len() != self.history.n_segments() {
            return Err(StreamError::InvalidUpdate(format!(
                "snapshot covers {} segments, network has {}",
                densities.len(),
                self.history.n_segments()
            )));
        }
        if densities.iter().any(|d| !d.is_finite()) {
            return Err(StreamError::InvalidUpdate(
                "densities must be finite".into(),
            ));
        }
        self.history.push(densities.to_vec());
        self.compact();
        Ok(())
    }

    /// Ingests every snapshot of a recorded history (replay).
    ///
    /// # Errors
    /// Same as [`Self::push`].
    pub fn push_history(&mut self, history: &DensityHistory) -> Result<()> {
        for t in 0..history.len() {
            self.push(history.at(t))?;
        }
        Ok(())
    }

    /// The current aggregate, one density per segment; `None` before the
    /// first update.
    pub fn current(&self) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        self.current_into(&mut out).then_some(out)
    }

    /// [`Self::current`] writing into a caller-owned buffer, returning
    /// `false` (with `out` cleared) before the first update. The engine
    /// calls this once per epoch with a retained scratch buffer, so the
    /// steady-state aggregate read allocates nothing.
    pub fn current_into(&self, out: &mut Vec<f64>) -> bool {
        match self.kind {
            AggregateKind::Latest => {
                out.clear();
                match self.history.last() {
                    Some(s) => {
                        out.extend_from_slice(s);
                        true
                    }
                    None => false,
                }
            }
            AggregateKind::WindowMean(w) => self.history.window_mean_into(w, out),
            AggregateKind::Ewma(alpha) => self.history.ewma_into(alpha, out),
        }
    }

    /// Drops snapshots that can no longer influence the aggregate. Amortized
    /// O(1) per push: compaction only runs when the buffer has doubled.
    fn compact(&mut self) {
        if self.history.len() < self.retain.saturating_mul(2).max(8) {
            return;
        }
        let keep = self.retain;
        let mut trimmed = DensityHistory::new(self.history.n_segments());
        for t in self.history.len() - keep..self.history.len() {
            trimmed.push(self.history.at(t).to_vec());
        }
        self.history = trimmed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_tracks_the_feed() {
        let mut agg = DensityAggregator::new(2, AggregateKind::Latest).unwrap();
        assert!(agg.current().is_none());
        agg.push(&[0.1, 0.2]).unwrap();
        agg.push(&[0.3, 0.4]).unwrap();
        assert_eq!(agg.current().unwrap(), vec![0.3, 0.4]);
    }

    #[test]
    fn window_mean_matches_history_accessor() {
        let mut agg = DensityAggregator::new(1, AggregateKind::WindowMean(2)).unwrap();
        for v in [1.0, 2.0, 4.0] {
            agg.push(&[v]).unwrap();
        }
        assert!((agg.current().unwrap()[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_smooths() {
        let mut agg = DensityAggregator::new(1, AggregateKind::Ewma(0.5)).unwrap();
        for v in [0.0, 1.0, 1.0] {
            agg.push(&[v]).unwrap();
        }
        assert!((agg.current().unwrap()[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_updates_and_configs() {
        let mut agg = DensityAggregator::new(2, AggregateKind::Latest).unwrap();
        assert!(agg.push(&[0.1]).is_err());
        assert!(agg.push(&[0.1, f64::NAN]).is_err());
        assert!(agg.is_empty(), "bad updates are not ingested");
        assert!(DensityAggregator::new(2, AggregateKind::WindowMean(0)).is_err());
        assert!(DensityAggregator::new(2, AggregateKind::Ewma(0.0)).is_err());
        assert!(DensityAggregator::new(2, AggregateKind::Ewma(1.5)).is_err());
    }

    #[test]
    fn compaction_bounds_memory_without_changing_the_aggregate() {
        let mut bounded = DensityAggregator::new(1, AggregateKind::WindowMean(3)).unwrap();
        for i in 0..1000 {
            bounded.push(&[i as f64]).unwrap();
        }
        assert!(bounded.len() <= 8, "buffer stays near the window size");
        // Mean of the last 3 of 0..1000.
        assert!((bounded.current().unwrap()[0] - 998.0).abs() < 1e-9);
    }

    #[test]
    fn replayed_history_matches_incremental_pushes() {
        let mut h = DensityHistory::new(1);
        for v in [0.2, 0.4, 0.8] {
            h.push(vec![v]);
        }
        let mut agg = DensityAggregator::new(1, AggregateKind::Ewma(0.3)).unwrap();
        agg.push_history(&h).unwrap();
        let direct = h.ewma(0.3).unwrap();
        assert!((agg.current().unwrap()[0] - direct[0]).abs() < 1e-12);
    }
}
