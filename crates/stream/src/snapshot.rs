//! Double-buffered, versioned partition snapshots.
//!
//! The serving path of a production deployment answers one question at very
//! high rate: *which partition does segment `s` belong to right now?* That
//! lookup must stay O(1) and must never block behind a repartition that is
//! minutes deep into an eigensolve. The store here gets both properties from
//! a classic read-copy-update shape:
//!
//! * readers grab an [`Arc`] clone of the current [`PartitionSnapshot`]
//!   under a read lock held for nanoseconds, then index into it freely —
//!   a snapshot is immutable, so a reader can hold it across an entire
//!   request without seeing a partial update;
//! * the writer (the epoch loop) builds the *next* snapshot entirely
//!   off-lock and swaps the `Arc` in one short write-lock critical section.
//!
//! Versions are strictly monotonic and survive no-op epochs unchanged, so a
//! consumer can cheaply detect "partition changed since I last looked".

use roadpart_net::SegmentId;

// Under `--cfg loom` the store is built on the model checker's sync types
// so `tests/loom_snapshot.rs` can explore publish/read interleavings; the
// loom stub's `Arc` is a re-export of `std::sync::Arc`, so the public
// `read() -> Arc<PartitionSnapshot>` signature is identical either way.
#[cfg(loom)]
use loom::sync::{
    atomic::{AtomicU64, Ordering},
    Arc, RwLock,
};
#[cfg(not(loom))]
use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc, RwLock,
};

/// One immutable, fully consistent partition of the road network.
#[derive(Debug, Clone)]
pub struct PartitionSnapshot {
    labels: Vec<usize>,
    /// Strictly increasing across publishes; `1` for the initial partition.
    pub version: u64,
    /// The engine epoch that produced this snapshot (`0` = initial).
    pub epoch: u64,
    /// Number of partitions in `labels`.
    pub k: usize,
}

impl PartitionSnapshot {
    fn new(labels: Vec<usize>, version: u64, epoch: u64) -> Self {
        let k = labels.iter().copied().max().map_or(0, |m| m + 1);
        Self {
            labels,
            version,
            epoch,
            k,
        }
    }

    /// Partition of segment `seg`, or `None` when the index is out of
    /// range. O(1).
    #[inline]
    pub fn lookup(&self, seg: usize) -> Option<usize> {
        self.labels.get(seg).copied()
    }

    /// [`Self::lookup`] with the typed segment id.
    #[inline]
    pub fn lookup_segment(&self, seg: SegmentId) -> Option<usize> {
        self.lookup(seg.index())
    }

    /// The full labeling (one partition id per segment).
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of segments covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for an empty network.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Concurrent store holding the live [`PartitionSnapshot`]. Cheap to share
/// (`Arc<PartitionStore>`); see the module docs for the consistency model.
#[derive(Debug)]
pub struct PartitionStore {
    current: RwLock<Arc<PartitionSnapshot>>,
    version: AtomicU64,
}

impl PartitionStore {
    /// Creates a store serving `labels` as version 1 / epoch `epoch`.
    pub fn new(labels: Vec<usize>, epoch: u64) -> Self {
        let snap = Arc::new(PartitionSnapshot::new(labels, 1, epoch));
        Self {
            current: RwLock::new(snap),
            version: AtomicU64::new(1),
        }
    }

    /// The live snapshot. O(1): one `Arc` clone under a momentary read
    /// lock. The returned snapshot stays valid (and immutable) however long
    /// the caller holds it, regardless of concurrent publishes.
    pub fn read(&self) -> Arc<PartitionSnapshot> {
        // Poison recovery is sound here: the only mutation ever performed
        // under the lock is a single `Arc` pointer swap, so a panicking
        // writer cannot leave a torn snapshot behind.
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Current version without taking the snapshot (monotonic).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The live snapshot only if it is newer than version `than`, else
    /// `None`. The cheap path for epoch-swap followers (the serving
    /// layer's oracle rebuilds): a stale-or-equal store costs one atomic
    /// load and no lock. The version check is re-applied to the snapshot
    /// actually read, so a `Some` result is never stale-or-equal even
    /// when publishes race the read.
    pub fn read_if_newer(&self, than: u64) -> Option<Arc<PartitionSnapshot>> {
        if self.version.load(Ordering::Acquire) <= than {
            return None;
        }
        let snap = self.read();
        (snap.version > than).then_some(snap)
    }

    /// Publishes a new labeling produced at `epoch`, returning its version.
    /// The snapshot is constructed before the write lock is taken; readers
    /// block only for the pointer swap.
    pub fn publish(&self, labels: Vec<usize>, epoch: u64) -> u64 {
        let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
        let snap = Arc::new(PartitionSnapshot::new(labels, version, epoch));
        match self.current.write() {
            Ok(mut guard) => *guard = snap,
            // See `read`: the swap is atomic with respect to readers, so a
            // poisoned lock still guards a fully consistent snapshot.
            Err(poisoned) => *poisoned.into_inner() = snap,
        }
        version
    }
}

// Plain std-thread tests; the loom interleaving suite lives in
// `tests/loom_snapshot.rs` and runs under `RUSTFLAGS="--cfg loom"`.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn lookup_and_metadata() {
        let store = PartitionStore::new(vec![0, 0, 1, 2], 0);
        let snap = store.read();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.k, 3);
        assert_eq!(snap.lookup(2), Some(1));
        assert_eq!(snap.lookup_segment(SegmentId::from_index(3)), Some(2));
        assert_eq!(snap.lookup(4), None);
    }

    #[test]
    fn publish_bumps_version_and_preserves_old_readers() {
        let store = PartitionStore::new(vec![0, 1], 0);
        let old = store.read();
        let v2 = store.publish(vec![1, 0], 1);
        assert_eq!(v2, 2);
        assert_eq!(store.version(), 2);
        // The pre-publish snapshot is untouched.
        assert_eq!(old.version, 1);
        assert_eq!(old.lookup(0), Some(0));
        let new = store.read();
        assert_eq!(new.version, 2);
        assert_eq!(new.epoch, 1);
    }

    #[test]
    fn read_if_newer_filters_stale_versions() {
        let store = PartitionStore::new(vec![0, 1], 0);
        assert!(store.read_if_newer(1).is_none(), "equal version is stale");
        assert!(store.read_if_newer(7).is_none());
        let snap = store.read_if_newer(0).expect("version 1 > 0");
        assert_eq!(snap.version, 1);
        store.publish(vec![1, 0], 3);
        let snap = store.read_if_newer(1).expect("version 2 > 1");
        assert_eq!(snap.version, 2);
        assert_eq!(snap.epoch, 3);
        assert!(store.read_if_newer(2).is_none());
    }

    #[test]
    fn concurrent_readers_always_see_complete_partitions() {
        let store = Arc::new(PartitionStore::new(vec![0; 64], 0));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last_version = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = store.read();
                        assert_eq!(snap.len(), 64, "snapshot must be complete");
                        // All labels of one snapshot come from one publish.
                        let first = snap.lookup(0).unwrap();
                        assert!(snap.labels().iter().all(|&l| l == first));
                        assert!(snap.version >= last_version, "versions monotonic");
                        last_version = snap.version;
                    }
                })
            })
            .collect();
        for e in 1..200u64 {
            store.publish(vec![e as usize % 7; 64], e);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.version(), 200);
    }
}
