//! Loom model checking of the [`PartitionStore`] publish/read protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, which also switches the
//! store itself onto loom's sync primitives (see `snapshot.rs`). Each test
//! wraps a small scenario in `loom::model`, which explores thread
//! interleavings and fails if any assertion fails in any schedule.
//!
//! The properties proved here back the module-level consistency claims:
//!
//! 1. **No torn reads** — every snapshot a reader obtains is byte-complete
//!    output of exactly one publish (labels internally consistent *and*
//!    consistent with the snapshot's version stamp).
//! 2. **Bounded staleness** — a reader that samples the version counter and
//!    then reads never gets a snapshot more than one version behind the
//!    sample, given the engine's single-writer discipline.
//! 3. **Per-reader monotonicity** — successive reads never go backwards.
//! 4. **Snapshot immutability** — a held snapshot is unaffected by
//!    concurrent publishes.
//!
//! Run: `RUSTFLAGS="--cfg loom" cargo test -p roadpart-stream --test loom_snapshot`
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use roadpart_stream::PartitionStore;

const SEGMENTS: usize = 8;

/// Publishes uniform labelings whose label value encodes the publish:
/// version `v` carries labels all equal to `v - 1`. Any mixed labeling, or
/// a labeling disagreeing with the version stamp, is a torn read.
fn tagged_publish(store: &PartitionStore, tag: usize) -> u64 {
    store.publish(vec![tag; SEGMENTS], tag as u64)
}

/// Asserts the snapshot is the intact output of a single publish.
fn assert_untorn(snap: &roadpart_stream::PartitionSnapshot) {
    assert_eq!(snap.len(), SEGMENTS, "snapshot must be complete");
    let first = snap.lookup(0).expect("non-empty snapshot");
    assert!(
        snap.labels().iter().all(|&l| l == first),
        "torn labels: {:?}",
        snap.labels()
    );
    assert_eq!(
        first as u64 + 1,
        snap.version,
        "labels belong to a different publish than the version stamp"
    );
}

#[test]
fn readers_never_observe_torn_snapshots() {
    loom::model(|| {
        // Initial store: version 1, labels all 0 — matches the tagging.
        let store = Arc::new(PartitionStore::new(vec![0; SEGMENTS], 0));

        let writer = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                tagged_publish(&store, 1);
                tagged_publish(&store, 2);
            })
        };
        let reader = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..3 {
                    let snap = store.read();
                    assert_untorn(&snap);
                    assert!(snap.version >= last, "reader went back in time");
                    last = snap.version;
                }
            })
        };

        writer.join().expect("writer panicked");
        reader.join().expect("reader panicked");
        assert_eq!(store.version(), 3);
        assert_eq!(store.read().version, 3, "final read sees the last publish");
    });
}

#[test]
fn reads_are_never_stale_beyond_one_version() {
    loom::model(|| {
        let store = Arc::new(PartitionStore::new(vec![0; SEGMENTS], 0));

        let writer = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                tagged_publish(&store, 1);
                tagged_publish(&store, 2);
            })
        };
        let reader = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for _ in 0..3 {
                    // With a single writer, once the counter reads `v` every
                    // publish up to `v - 1` has fully swapped, so a
                    // subsequent read returns version >= v - 1.
                    let sampled = store.version();
                    let snap = store.read();
                    assert_untorn(&snap);
                    assert!(
                        snap.version + 1 >= sampled,
                        "snapshot v{} more than one behind sampled counter v{sampled}",
                        snap.version
                    );
                }
            })
        };

        writer.join().expect("writer panicked");
        reader.join().expect("reader panicked");
    });
}

#[test]
fn held_snapshots_are_immutable_across_publishes() {
    loom::model(|| {
        let store = Arc::new(PartitionStore::new(vec![0; SEGMENTS], 0));
        let held = store.read();
        assert_eq!(held.version, 1);

        let writer = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                tagged_publish(&store, 1);
            })
        };
        // Reads racing the publish must not disturb the held snapshot.
        let _racing = store.read();
        writer.join().expect("writer panicked");

        assert_eq!(held.version, 1, "held snapshot version mutated");
        assert!(
            held.labels().iter().all(|&l| l == 0),
            "held snapshot labels mutated: {:?}",
            held.labels()
        );
        let fresh = store.read();
        assert_eq!(fresh.version, 2);
        assert_untorn(&fresh);
    });
}

#[test]
fn degraded_epochs_leave_readers_on_the_last_good_snapshot() {
    loom::model(|| {
        let store = Arc::new(PartitionStore::new(vec![0; SEGMENTS], 0));

        // A degraded epoch in the engine: the intended solve fails after
        // its retries, the ladder bottoms out at no-op, and the writer
        // touches the store only for the epoch that actually succeeds.
        // Concurrent readers must ride out the failed epoch on the last
        // good snapshot and never see a partial publish.
        let writer = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                // Epoch 1: solve fails -> fully degraded -> NO publish.
                // (Nothing to model: the failure path never writes.)
                // Epoch 2: recovery succeeds and publishes.
                tagged_publish(&store, 1);
            })
        };
        let reader = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2 {
                    let snap = store.read();
                    // During the degraded window only versions 1 (initial)
                    // and 2 (recovery) can exist — and both are untorn.
                    assert_untorn(&snap);
                    assert!(
                        snap.version == 1 || snap.version == 2,
                        "unexpected version {} during degraded window",
                        snap.version
                    );
                    assert!(snap.version >= last, "reader went back in time");
                    last = snap.version;
                }
            })
        };

        writer.join().expect("writer panicked");
        reader.join().expect("reader panicked");
        // After recovery every reader converges on the recovered epoch.
        let snap = store.read();
        assert_eq!(snap.version, 2);
        assert_untorn(&snap);
    });
}

#[test]
fn version_counter_is_strictly_monotonic_and_complete() {
    loom::model(|| {
        let store = Arc::new(PartitionStore::new(vec![0; SEGMENTS], 0));

        // Two concurrent publishers: version *reservations* must be unique
        // and the counter must account for every publish. (The serving
        // engine is single-writer; this checks the counter protocol itself
        // stays sound even if that discipline is ever relaxed.)
        let a = {
            let store = Arc::clone(&store);
            thread::spawn(move || store.publish(vec![1; SEGMENTS], 1))
        };
        let b = {
            let store = Arc::clone(&store);
            thread::spawn(move || store.publish(vec![2; SEGMENTS], 2))
        };
        let va = a.join().expect("publisher a panicked");
        let vb = b.join().expect("publisher b panicked");

        assert_ne!(va, vb, "two publishes reserved the same version");
        let mut got = [va, vb];
        got.sort_unstable();
        assert_eq!(got, [2, 3], "versions must be dense after the initial 1");
        assert_eq!(store.version(), 3);

        // Whichever swap landed last is served, and it is untorn.
        let snap = store.read();
        assert_eq!(snap.len(), SEGMENTS);
        let first = snap.lookup(0).expect("non-empty snapshot");
        assert!(snap.labels().iter().all(|&l| l == first));
    });
}
