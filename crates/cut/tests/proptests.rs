//! Property-based tests for the graph-cut layer.

use proptest::prelude::*;
use roadpart_cut::{gaussian_affinity, greedy_merge, partition_connectivity, Partition};
use roadpart_linalg::CsrMatrix;

fn arb_graph() -> impl Strategy<Value = (CsrMatrix, Vec<f64>)> {
    (4usize..24).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n), 0..n);
        let feats = proptest::collection::vec(0.0f64..1.0, n);
        (Just(n), chords, feats).prop_map(|(n, chords, feats)| {
            let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
            for (a, b) in chords {
                if a != b {
                    edges.push((a, b, 1.0));
                }
            }
            (CsrMatrix::from_undirected_edges(n, &edges).unwrap(), feats)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partition label densification: dense ids, stable group structure.
    #[test]
    fn partition_densification(raw in proptest::collection::vec(0usize..10, 1..40)) {
        let p = Partition::from_labels(&raw);
        prop_assert_eq!(p.len(), raw.len());
        // Dense labels 0..k, all present.
        for c in 0..p.k() {
            prop_assert!(p.labels().contains(&c));
        }
        // Same raw label <=> same dense label.
        for i in 0..raw.len() {
            for j in 0..raw.len() {
                prop_assert_eq!(raw[i] == raw[j], p.label(i) == p.label(j));
            }
        }
        // Sizes sum to n.
        prop_assert_eq!(p.sizes().iter().sum::<usize>(), p.len());
    }

    /// Gaussian affinity keeps the adjacency pattern, symmetry, and (0,1]
    /// weights.
    #[test]
    fn affinity_structure((adj, feats) in arb_graph()) {
        let a = gaussian_affinity(&adj, &feats).unwrap();
        prop_assert_eq!(a.nnz(), adj.nnz(), "pattern must be preserved");
        prop_assert!(a.is_symmetric(1e-12));
        for (i, j, w) in a.iter() {
            prop_assert!(w > 0.0 && w <= 1.0);
            prop_assert!(adj.get(i, j) != 0.0);
        }
    }

    /// The condensed partition-connectivity matrix is symmetric, has zero
    /// diagonal, and links exactly the spatially adjacent partition pairs.
    #[test]
    fn connectivity_matrix_structure((adj, _) in arb_graph(), seed in proptest::collection::vec(0usize..4, 24)) {
        let labels: Vec<usize> = (0..adj.dim()).map(|i| seed[i]).collect();
        let p = Partition::from_labels(&labels);
        let conn = partition_connectivity(&adj, &p.groups()).unwrap();
        prop_assert_eq!(conn.dim(), p.k());
        prop_assert!(conn.is_symmetric(1e-12));
        for i in 0..p.k() {
            prop_assert_eq!(conn.get(i, i), 0.0);
        }
        // Non-zero iff some road link crosses the pair.
        for gi in 0..p.k() {
            for gj in (gi + 1)..p.k() {
                let crossing = adj.iter().any(|(u, v, _)| {
                    (p.label(u) == gi && p.label(v) == gj)
                        || (p.label(u) == gj && p.label(v) == gi)
                });
                prop_assert_eq!(conn.get(gi, gj) > 0.0, crossing);
            }
        }
    }

    /// Greedy merging never merges past k and never splits.
    #[test]
    fn greedy_merge_bounds((adj, _) in arb_graph(), seed in proptest::collection::vec(0usize..5, 24), k in 1usize..4) {
        let labels: Vec<usize> = (0..adj.dim()).map(|i| seed[i]).collect();
        let p = Partition::from_labels(&labels);
        let conn = partition_connectivity(&adj, &p.groups()).unwrap();
        let meta = greedy_merge(&conn, k).unwrap();
        prop_assert!(meta.k() >= k.min(p.k()));
        prop_assert!(meta.k() <= p.k());
        prop_assert_eq!(meta.len(), p.k());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Partition::validate` accepts every densified labeling and rejects
    /// the same labeling with a hole punched into its label space.
    #[test]
    fn validate_accepts_dense_and_rejects_holes(raw in proptest::collection::vec(0usize..6, 1..40)) {
        let p = Partition::from_labels(&raw);
        prop_assert!(p.validate().is_ok());

        // Punch a hole: move the top label one up, then claim k + 1
        // labels. The typed API cannot express this, so go through serde
        // like a corrupted checkpoint would.
        let holed: Vec<usize> = p
            .labels()
            .iter()
            .map(|&l| if l == p.k() - 1 { l + 1 } else { l })
            .collect();
        let json = format!("{{\"labels\": {:?}, \"k\": {}}}", holed, p.k() + 1);
        let mutated: Partition = serde_json::from_str(&json).unwrap();
        prop_assert!(mutated.validate().is_err(), "label hole accepted");

        // Out-of-range labels are also rejected.
        let json = format!("{{\"labels\": {:?}, \"k\": {}}}", p.labels(), p.k().saturating_sub(1).max(1));
        let mutated: Partition = serde_json::from_str(&json).unwrap();
        if p.k() > 1 {
            prop_assert!(mutated.validate().is_err(), "out-of-range label accepted");
        }
    }
}
