//! Error types for graph cuts.

use std::fmt;

/// Errors produced by the spectral partitioners.
#[derive(Debug)]
pub enum CutError {
    /// Requested partition count is impossible for this graph.
    BadPartitionCount {
        /// Requested `k`.
        requested: usize,
        /// Graph order.
        nodes: usize,
    },
    /// Input violates a precondition (asymmetric adjacency, NaN weights...).
    InvalidInput(String),
    /// Underlying eigensolver failure.
    Linalg(roadpart_linalg::LinalgError),
    /// Underlying clustering failure.
    Cluster(roadpart_cluster::ClusterError),
}

impl fmt::Display for CutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CutError::BadPartitionCount { requested, nodes } => {
                write!(
                    f,
                    "cannot cut a {nodes}-node graph into {requested} partitions"
                )
            }
            CutError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CutError::Linalg(e) => write!(f, "eigensolver error: {e}"),
            CutError::Cluster(e) => write!(f, "clustering error: {e}"),
        }
    }
}

impl std::error::Error for CutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CutError::Linalg(e) => Some(e),
            CutError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<roadpart_linalg::LinalgError> for CutError {
    fn from(e: roadpart_linalg::LinalgError) -> Self {
        CutError::Linalg(e)
    }
}

impl From<roadpart_cluster::ClusterError> for CutError {
    fn from(e: roadpart_cluster::ClusterError) -> Self {
        CutError::Cluster(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CutError>;
