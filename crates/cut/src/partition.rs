//! The partition type shared by all cut algorithms.

use crate::error::{CutError, Result};
use serde::{Deserialize, Serialize};

/// A disjoint partition of graph nodes: `labels[i]` is the partition index
/// of node `i`, with labels dense in `0..k`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    labels: Vec<usize>,
    k: usize,
}

impl Partition {
    /// Builds a partition from arbitrary labels, re-mapping them to the
    /// dense range `0..k` in first-appearance order.
    pub fn from_labels(raw: &[usize]) -> Self {
        let mut remap = std::collections::BTreeMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &l in raw {
            let next = remap.len();
            let dense = *remap.entry(l).or_insert(next);
            labels.push(dense);
        }
        Self {
            labels,
            k: remap.len(),
        }
    }

    /// Number of partitions `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for a partition of the empty graph.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of node `i`.
    #[inline]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels in node order.
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Member lists per partition, ascending node order within each.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k];
        for (i, &l) in self.labels.iter().enumerate() {
            groups[l].push(i);
        }
        groups
    }

    /// Node count per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Checks the structural invariants every consumer of a partition
    /// relies on: the labeling is **disjoint and covering** by
    /// representation (exactly one label per node), so what remains to
    /// verify is that the stored `k` is consistent and the labels are
    /// **contiguous** — every label is `< k` and every value in `0..k`
    /// names a non-empty partition (no holes).
    ///
    /// [`Partition::from_labels`] establishes these invariants; this method
    /// exists so deserialized partitions (the type is `Deserialize`) and
    /// pipeline outputs can be checked mechanically at stage boundaries
    /// instead of trusted.
    ///
    /// # Errors
    /// Returns [`CutError::InvalidInput`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        if self.labels.is_empty() {
            return if self.k == 0 {
                Ok(())
            } else {
                Err(CutError::InvalidInput(format!(
                    "empty partition claims k = {}",
                    self.k
                )))
            };
        }
        let mut seen = vec![false; self.k];
        for (i, &l) in self.labels.iter().enumerate() {
            if l >= self.k {
                return Err(CutError::InvalidInput(format!(
                    "node {i} has label {l} >= k = {}",
                    self.k
                )));
            }
            seen[l] = true;
        }
        if let Some(hole) = seen.iter().position(|&s| !s) {
            return Err(CutError::InvalidInput(format!(
                "label {hole} of 0..{} names an empty partition (label hole)",
                self.k
            )));
        }
        Ok(())
    }

    /// Composes with a coarser partition of the partitions themselves:
    /// `meta.label(p)` gives the final group of partition `p`.
    ///
    /// # Panics
    /// Panics if `meta.len() != self.k()` (an internal-logic error).
    pub fn compose(&self, meta: &Partition) -> Partition {
        assert_eq!(meta.len(), self.k, "meta partition must cover k groups");
        let raw: Vec<usize> = self.labels.iter().map(|&l| meta.label(l)).collect();
        Partition::from_labels(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densifies_labels() {
        let p = Partition::from_labels(&[7, 7, 3, 9, 3]);
        assert_eq!(p.k(), 3);
        assert_eq!(p.labels(), &[0, 0, 1, 2, 1]);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn groups_cover_all_nodes() {
        let p = Partition::from_labels(&[0, 1, 0, 2, 1]);
        let groups = p.groups();
        assert_eq!(groups.len(), 3);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn compose_applies_meta_grouping() {
        // 4 fine partitions merged into 2 groups: {0, 2} and {1, 3}.
        let fine = Partition::from_labels(&[0, 1, 2, 3, 0, 1]);
        let meta = Partition::from_labels(&[0, 1, 0, 1]);
        let coarse = fine.compose(&meta);
        assert_eq!(coarse.k(), 2);
        assert_eq!(coarse.label(0), coarse.label(2));
        assert_eq!(coarse.label(1), coarse.label(3));
        assert_ne!(coarse.label(0), coarse.label(1));
    }

    #[test]
    fn validate_accepts_constructor_output() {
        Partition::from_labels(&[7, 7, 3, 9, 3]).validate().unwrap();
        Partition::from_labels(&[]).validate().unwrap();
        Partition::from_labels(&[0]).validate().unwrap();
    }

    #[test]
    fn validate_rejects_label_holes_and_bad_k() {
        // The type is Deserialize, so invalid states can enter via JSON.
        let hole: Partition = serde_json::from_str(r#"{"labels": [0, 2, 0], "k": 3}"#).unwrap();
        assert!(hole.validate().is_err(), "label 1 is a hole");
        let oob: Partition = serde_json::from_str(r#"{"labels": [0, 5], "k": 2}"#).unwrap();
        assert!(oob.validate().is_err(), "label 5 >= k");
        let empty_k: Partition = serde_json::from_str(r#"{"labels": [], "k": 1}"#).unwrap();
        assert!(empty_k.validate().is_err(), "empty labels with k = 1");
        let ok: Partition = serde_json::from_str(r#"{"labels": [1, 0, 1], "k": 2}"#).unwrap();
        ok.validate().unwrap();
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_labels(&[]);
        assert!(p.is_empty());
        assert_eq!(p.k(), 0);
        assert!(p.groups().is_empty());
    }
}
