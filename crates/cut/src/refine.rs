//! Refinement from k′ fine partitions to exactly k (Algorithm 3 lines
//! 11–24, §5.4).
//!
//! Component extraction after eigenspace k-means may leave k′ ≠ k
//! partitions. For k′ > k the paper condenses the partitions into a
//! k′-node *partition connectivity* graph and recursively bipartitions it
//! (global recursive bipartitioning); greedy pruning (merging nearest pairs)
//! is implemented as the paper's stated alternative. For k′ < k — a case
//! the paper leaves open — the largest partitions are recursively
//! bipartitioned on the original graph until k is reached.

use crate::bipartition::bipartition;
use crate::embedding::CutKind;
use crate::error::{CutError, Result};
use crate::partition::Partition;
use roadpart_cluster::KMeansConfig;
use roadpart_linalg::{CsrMatrix, EigenConfig};
use std::collections::VecDeque;

/// Builds the k′ × k′ partition connectivity matrix `A'` of §5.4:
/// `A'(i,j) = sqrt( Σ_{p∈P_i, q∈P_j} A(p,q)² / numadj(P_i, P_j) )`,
/// zero for partition pairs sharing no adjacency.
///
/// # Errors
/// Returns [`CutError::InvalidInput`] if `groups` do not form a disjoint
/// cover of the graph's nodes.
pub fn partition_connectivity(adj: &CsrMatrix, groups: &[Vec<usize>]) -> Result<CsrMatrix> {
    let n = adj.dim();
    let kp = groups.len();
    let mut owner = vec![usize::MAX; n];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            if m >= n || owner[m] != usize::MAX {
                return Err(CutError::InvalidInput(format!(
                    "groups must disjointly cover nodes; node {m} repeated or out of range"
                )));
            }
            owner[m] = g;
        }
    }
    if owner.contains(&usize::MAX) {
        return Err(CutError::InvalidInput(
            "groups must cover every node".into(),
        ));
    }
    // Accumulate sum of squared weights and adjacency counts per group pair.
    let mut sums: std::collections::BTreeMap<(usize, usize), (f64, usize)> =
        std::collections::BTreeMap::new();
    for (i, j, w) in adj.iter() {
        let (gi, gj) = (owner[i], owner[j]);
        if gi < gj {
            let e = sums.entry((gi, gj)).or_insert((0.0, 0));
            e.0 += w * w;
            e.1 += 1;
        }
    }
    let triplets: Vec<(usize, usize, f64)> = sums
        .into_iter()
        .map(|((gi, gj), (sq, cnt))| (gi, gj, (sq / cnt as f64).sqrt()))
        .collect();
    Ok(CsrMatrix::from_undirected_edges(kp, &triplets)?)
}

/// Global recursive bipartitioning (Algorithm 3 lines 12–24): splits the
/// graph's node set into exactly `k` groups by repeatedly bipartitioning in
/// FIFO order. Used on the condensed partition-connectivity graph.
///
/// If the graph cannot yield `k` non-empty groups (k > n) the result has
/// `n` singleton groups.
///
/// # Errors
/// Propagates bipartitioning failures.
pub fn recursive_bipartition(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    eig: &EigenConfig,
    km: &KMeansConfig,
) -> Result<Partition> {
    let n = adj.dim();
    let mut groups: Vec<Vec<usize>> = vec![(0..n).collect()];
    if n == 0 {
        return Ok(Partition::from_labels(&[]));
    }
    let mut queue: VecDeque<usize> = VecDeque::from([0usize]);
    while groups.len() < k.min(n) {
        let Some(gi) = queue.pop_front() else {
            break; // nothing splittable remains
        };
        if groups[gi].len() < 2 {
            continue;
        }
        let members = groups[gi].clone();
        let sub = adj.submatrix(&members)?;
        let labels = bipartition(&sub, kind, eig, km)?;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (local, &node) in members.iter().enumerate() {
            if labels[local] == 0 {
                left.push(node);
            } else {
                right.push(node);
            }
        }
        debug_assert!(!left.is_empty() && !right.is_empty());
        groups[gi] = left;
        groups.push(right);
        queue.push_back(gi);
        queue.push_back(groups.len() - 1);
    }
    Ok(partition_from_groups(n, &groups))
}

/// Splits the largest partitions of `fine` on the original graph until `k`
/// partitions exist (the k′ < k case).
///
/// # Errors
/// Propagates bipartitioning failures.
pub fn split_to_k(
    adj: &CsrMatrix,
    fine: &Partition,
    k: usize,
    kind: CutKind,
    eig: &EigenConfig,
    km: &KMeansConfig,
) -> Result<Partition> {
    let n = adj.dim();
    let mut groups = fine.groups();
    while groups.len() < k.min(n) {
        // Split the largest splittable group.
        let Some((gi, _)) = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.len() >= 2)
            .max_by_key(|(_, g)| g.len())
        else {
            break;
        };
        let members = groups[gi].clone();
        let sub = adj.submatrix(&members)?;
        let labels = bipartition(&sub, kind, eig, km)?;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (local, &node) in members.iter().enumerate() {
            if labels[local] == 0 {
                left.push(node);
            } else {
                right.push(node);
            }
        }
        groups[gi] = left;
        groups.push(right);
    }
    Ok(partition_from_groups(n, &groups))
}

/// Greedy pruning (§5.4's alternative to recursive bipartitioning):
/// repeatedly merges the pair of *adjacent* partitions with the strongest
/// connectivity in `A'` until `k` remain. Quadratic in k′ — the paper
/// rejects it for large k′, and we keep it for the ablation bench.
///
/// Returns a meta-partition over the k′ input groups.
///
/// # Errors
/// Returns [`CutError::BadPartitionCount`] when `k` is zero.
pub fn greedy_merge(connectivity: &CsrMatrix, k: usize) -> Result<Partition> {
    let kp = connectivity.dim();
    if k == 0 {
        return Err(CutError::BadPartitionCount {
            requested: k,
            nodes: kp,
        });
    }
    // Union-find with a live merged-weight table.
    let mut parent: Vec<usize> = (0..kp).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut weights: std::collections::BTreeMap<(usize, usize), f64> = connectivity
        .iter()
        .filter(|&(i, j, _)| i < j)
        .map(|(i, j, w)| ((i, j), w))
        .collect();
    let mut remaining = kp;
    while remaining > k {
        // Strongest adjacent pair of current roots.
        let Some((&(a, b), _)) = roadpart_linalg::ord::max_by_f64_key(weights.iter(), |e| *e.1)
        else {
            break; // disconnected remainder: cannot merge further
        };
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        weights.remove(&(a, b));
        if ra == rb {
            continue;
        }
        parent[rb] = ra;
        remaining -= 1;
        // Re-root the weight table on canonical pairs.
        let mut next: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for ((x, y), w) in std::mem::take(&mut weights) {
            let (rx, ry) = (find(&mut parent, x), find(&mut parent, y));
            if rx == ry {
                continue;
            }
            let key = (rx.min(ry), rx.max(ry));
            let e = next.entry(key).or_insert(0.0);
            *e = e.max(w);
        }
        weights = next;
    }
    let labels: Vec<usize> = (0..kp).map(|i| find(&mut parent, i)).collect();
    Ok(Partition::from_labels(&labels))
}

fn partition_from_groups(n: usize, groups: &[Vec<usize>]) -> Partition {
    let mut labels = vec![0usize; n];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            labels[m] = g;
        }
    }
    Partition::from_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs() -> (EigenConfig, KMeansConfig) {
        (EigenConfig::default(), KMeansConfig::default())
    }

    /// Four cliques of 3, chained with weak bridges.
    fn four_cliques() -> CsrMatrix {
        let mut edges = Vec::new();
        for c in 0..4usize {
            let b = 3 * c;
            edges.push((b, b + 1, 1.0));
            edges.push((b + 1, b + 2, 1.0));
            edges.push((b, b + 2, 1.0));
            if c > 0 {
                edges.push((b - 1, b, 0.05));
            }
        }
        CsrMatrix::from_undirected_edges(12, &edges).unwrap()
    }

    #[test]
    fn connectivity_matrix_shape_and_values() {
        let adj = four_cliques();
        let groups: Vec<Vec<usize>> = (0..4).map(|c| (3 * c..3 * c + 3).collect()).collect();
        let conn = partition_connectivity(&adj, &groups).unwrap();
        assert_eq!(conn.dim(), 4);
        // Chain structure: only consecutive groups connected.
        assert!(conn.get(0, 1) > 0.0);
        assert!(conn.get(1, 2) > 0.0);
        assert_eq!(conn.get(0, 2), 0.0);
        assert!(conn.is_symmetric(1e-12));
        // Single bridging link of weight w: A'(i,j) = sqrt(w^2 / 1) = w.
        assert!((conn.get(0, 1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn connectivity_rejects_bad_groups() {
        let adj = four_cliques();
        // Missing node.
        let incomplete: Vec<Vec<usize>> = vec![(0..11).collect()];
        assert!(partition_connectivity(&adj, &incomplete).is_err());
        // Duplicate node.
        let dup: Vec<Vec<usize>> = vec![(0..12).collect(), vec![0]];
        assert!(partition_connectivity(&adj, &dup).is_err());
    }

    #[test]
    fn recursive_bipartition_reaches_k() {
        let adj = four_cliques();
        let (eig, km) = cfgs();
        for k in 2..=4 {
            let p = recursive_bipartition(&adj, k, CutKind::Alpha, &eig, &km).unwrap();
            assert_eq!(p.k(), k, "k = {k}");
            assert!(p.sizes().iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn recursive_bipartition_respects_clique_structure_at_k4() {
        let adj = four_cliques();
        let (eig, km) = cfgs();
        let p = recursive_bipartition(&adj, 4, CutKind::Alpha, &eig, &km).unwrap();
        for c in 0..4 {
            let l = p.label(3 * c);
            assert_eq!(p.label(3 * c + 1), l);
            assert_eq!(p.label(3 * c + 2), l);
        }
    }

    #[test]
    fn recursive_bipartition_k_exceeds_n() {
        let adj = CsrMatrix::from_undirected_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let (eig, km) = cfgs();
        let p = recursive_bipartition(&adj, 10, CutKind::Alpha, &eig, &km).unwrap();
        assert_eq!(p.k(), 3);
    }

    #[test]
    fn split_to_k_grows_partition_count() {
        let adj = four_cliques();
        let (eig, km) = cfgs();
        let fine = Partition::from_labels(&[0; 12]); // everything together
        let p = split_to_k(&adj, &fine, 4, CutKind::Alpha, &eig, &km).unwrap();
        assert_eq!(p.k(), 4);
    }

    #[test]
    fn greedy_merge_reduces_to_k() {
        let adj = four_cliques();
        let groups: Vec<Vec<usize>> = (0..4).map(|c| (3 * c..3 * c + 3).collect()).collect();
        let conn = partition_connectivity(&adj, &groups).unwrap();
        let meta = greedy_merge(&conn, 2).unwrap();
        assert_eq!(meta.k(), 2);
        // Merging follows the chain: adjacent groups merge first.
        assert!(greedy_merge(&conn, 0).is_err());
        let all = greedy_merge(&conn, 1).unwrap();
        assert_eq!(all.k(), 1);
        let same = greedy_merge(&conn, 4).unwrap();
        assert_eq!(same.k(), 4);
    }

    #[test]
    fn greedy_merge_disconnected_stops_early() {
        // Two groups with no connectivity cannot merge below 2.
        let conn = CsrMatrix::from_triplets(2, &[]).unwrap();
        let meta = greedy_merge(&conn, 1).unwrap();
        assert_eq!(meta.k(), 2);
    }
}
