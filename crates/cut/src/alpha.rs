//! The k-way α-Cut (paper §5.2–§5.4) — public entry point.
//!
//! α-Cut minimizes
//! `Σ_i ( α_i · W(P_i, ~P_i)/|P_i| − (1 − α_i) · W(P_i, P_i)/|P_i| )`
//! (Eq. 5), balancing average cut against average association per
//! partition. With the paper's data-driven
//! `α_i = W(P_i, V)/W(V, V)` the objective reduces to
//! `Σ_i c_iᵀ M c_i / c_iᵀ c_i` with the α-Cut matrix
//! `M = (1ᵀD)ᵀ(1ᵀD)/(1ᵀD1) − A` (Eq. 6), solved by spectral relaxation.

use crate::embedding::CutKind;
use crate::error::Result;
use crate::kway::{spectral_partition, SpectralConfig};
use crate::partition::Partition;
use roadpart_linalg::CsrMatrix;

/// Partitions a weighted graph into `k` groups by minimizing the α-Cut.
///
/// # Errors
/// See [`spectral_partition`].
pub fn alpha_cut(adj: &CsrMatrix, k: usize, cfg: &SpectralConfig) -> Result<Partition> {
    spectral_partition(adj, k, CutKind::Alpha, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::dense_alpha_matrix;
    use roadpart_linalg::eigh;

    /// The α-Cut matrix equals the negative modularity matrix
    /// `B = A - d dᵀ / (2m)` (§7: "This matrix actually equals to the
    /// negative of our α-Cut matrix"), so minimizing α-Cut approximately
    /// maximizes modularity.
    #[test]
    fn alpha_matrix_is_negative_modularity_matrix() {
        let adj = CsrMatrix::from_undirected_edges(
            5,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 0.5),
                (3, 4, 1.5),
                (4, 0, 1.0),
                (1, 3, 0.25),
            ],
        )
        .unwrap();
        let m = dense_alpha_matrix(&adj);
        let d = adj.degrees();
        let two_m: f64 = d.iter().sum();
        for i in 0..5 {
            for j in 0..5 {
                let b = adj.get(i, j) - d[i] * d[j] / two_m;
                assert!(
                    (m.get(i, j) + b).abs() < 1e-12,
                    "M[{i}][{j}] != -B[{i}][{j}]"
                );
            }
        }
    }

    /// Eigenvectors of the k smallest α-Cut eigenvalues coincide with those
    /// of the k largest modularity eigenvalues (White & Smyth equivalence).
    #[test]
    fn smallest_alpha_eigens_are_largest_modularity_eigens() {
        let adj = CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.1),
            ],
        )
        .unwrap();
        let m = dense_alpha_matrix(&adj);
        let dec = eigh(&m).unwrap();
        // -M's largest eigenvalue = -(M's smallest); same eigenvector.
        let neg = roadpart_linalg::DenseMatrix::from_fn(6, 6, |i, j| -m.get(i, j));
        let neg_dec = eigh(&neg).unwrap();
        let n = 6;
        for j in 0..2 {
            assert!((dec.values[j] + neg_dec.values[n - 1 - j]).abs() < 1e-10);
        }
    }

    #[test]
    fn alpha_cut_on_weighted_communities() {
        // Two dense communities with different internal densities.
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push((i, j, 2.0));
                edges.push((5 + i, 5 + j, 1.0));
            }
        }
        edges.push((4, 5, 0.05));
        let adj = CsrMatrix::from_undirected_edges(10, &edges).unwrap();
        let p = alpha_cut(&adj, 2, &SpectralConfig::default()).unwrap();
        assert_eq!(p.k(), 2);
        assert_ne!(p.label(0), p.label(9));
        for i in 1..5 {
            assert_eq!(p.label(i), p.label(0));
        }
    }
}
