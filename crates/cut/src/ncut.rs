//! The normalized-cut baseline (Shi & Malik \[11\]) — public entry point.
//!
//! Normalized cut minimizes `Σ_i W(P_i, ~P_i) / W(P_i, V)`, normalizing by
//! link volume rather than node count. The paper's NG/NSG schemes run this
//! through the same spectral pipeline, using the `k` smallest eigenvectors
//! of `L_sym = I − D^{-1/2} A D^{-1/2}`.

use crate::embedding::CutKind;
use crate::error::Result;
use crate::kway::{spectral_partition, SpectralConfig};
use crate::partition::Partition;
use roadpart_linalg::CsrMatrix;

/// Partitions a weighted graph into `k` groups by minimizing the
/// normalized cut.
///
/// # Errors
/// See [`spectral_partition`].
pub fn normalized_cut(adj: &CsrMatrix, k: usize, cfg: &SpectralConfig) -> Result<Partition> {
    spectral_partition(adj, k, CutKind::Normalized, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_barbell() {
        // Two cliques of 5 joined by a single unit link.
        let mut edges = Vec::new();
        for b in [0usize, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((b + i, b + j, 1.0));
                }
            }
        }
        edges.push((4, 5, 1.0));
        let adj = CsrMatrix::from_undirected_edges(10, &edges).unwrap();
        let p = normalized_cut(&adj, 2, &SpectralConfig::default()).unwrap();
        assert_eq!(p.k(), 2);
        for i in 0..5 {
            assert_eq!(p.label(i), p.label(0));
            assert_eq!(p.label(5 + i), p.label(5));
        }
        assert_ne!(p.label(0), p.label(5));
    }

    #[test]
    fn handles_isolated_nodes() {
        // Triangle plus two isolated nodes.
        let adj =
            CsrMatrix::from_undirected_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let p = normalized_cut(&adj, 3, &SpectralConfig::default()).unwrap();
        // Isolated nodes form singleton partitions; the triangle stays whole
        // or splits, but everything stays internally connected.
        assert!(p.k() >= 3);
        assert_ne!(p.label(3), p.label(4));
        assert_ne!(p.label(3), p.label(0));
    }

    #[test]
    fn unbalanced_communities() {
        // A big community (8) and a small one (3).
        let mut edges = Vec::new();
        for i in 0..8usize {
            for j in (i + 1)..8 {
                edges.push((i, j, 1.0));
            }
        }
        for i in 8..11usize {
            for j in (i + 1)..11 {
                edges.push((i, j, 1.0));
            }
        }
        edges.push((7, 8, 0.1));
        let adj = CsrMatrix::from_undirected_edges(11, &edges).unwrap();
        let p = normalized_cut(&adj, 2, &SpectralConfig::default()).unwrap();
        let sizes = p.sizes();
        assert_eq!(p.k(), 2);
        assert_eq!(sizes.iter().max(), Some(&8));
        assert_eq!(sizes.iter().min(), Some(&3));
    }
}
