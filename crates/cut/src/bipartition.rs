//! Two-way spectral cuts (the primitive of the recursive refinement).

use crate::embedding::{embedding, row_normalize, CutKind};
use crate::error::Result;
use roadpart_cluster::{kmeans, KMeansConfig};
use roadpart_linalg::{CsrMatrix, EigenConfig};

/// Splits a weighted graph into exactly two non-empty sides using the given
/// cut's 2-dimensional spectral embedding, returning 0/1 labels.
///
/// Degenerate situations are handled so that *progress is guaranteed* for
/// any graph with at least two nodes — required for termination of the
/// recursive refinement:
///
/// * spectral k-means collapsing to one side → fall back to a sign split of
///   the second eigenvector;
/// * that also failing (identical rows) → balanced index split.
///
/// # Errors
/// Propagates eigensolver/k-means failures. A graph with fewer than two
/// nodes returns all-zero labels.
pub fn bipartition(
    adj: &CsrMatrix,
    kind: CutKind,
    eig: &EigenConfig,
    km_cfg: &KMeansConfig,
) -> Result<Vec<usize>> {
    let n = adj.dim();
    if n < 2 {
        return Ok(vec![0; n]);
    }
    if n == 2 {
        return Ok(vec![0, 1]);
    }
    let mut y = embedding(adj, 2, kind, eig)?;
    row_normalize(&mut y);
    let km = kmeans(&y, 2, km_cfg)?;
    let mut labels = km.assignments;
    if !is_proper_bipartition(&labels) {
        // Sign split of the second (Fiedler-like) eigenvector.
        let second = y.col(1.min(y.cols().saturating_sub(1)));
        for (l, &v) in labels.iter_mut().zip(&second) {
            *l = usize::from(v > 0.0);
        }
    }
    if !is_proper_bipartition(&labels) {
        // Identical embedding rows: balanced index split.
        for (i, l) in labels.iter_mut().enumerate() {
            *l = usize::from(i >= n / 2);
        }
    }
    Ok(labels)
}

fn is_proper_bipartition(labels: &[usize]) -> bool {
    labels.contains(&0) && labels.contains(&1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs() -> (EigenConfig, KMeansConfig) {
        (EigenConfig::default(), KMeansConfig::default())
    }

    /// Two cliques of 4, weakly bridged.
    fn two_cliques() -> CsrMatrix {
        let mut edges = Vec::new();
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
        edges.push((3, 4, 0.01));
        CsrMatrix::from_undirected_edges(8, &edges).unwrap()
    }

    #[test]
    fn splits_two_cliques_cleanly() {
        let (eig, km) = cfgs();
        for kind in [CutKind::Alpha, CutKind::Normalized] {
            let labels = bipartition(&two_cliques(), kind, &eig, &km).unwrap();
            assert!(is_proper_bipartition(&labels));
            for i in 1..4 {
                assert_eq!(labels[0], labels[i], "{kind:?}");
            }
            for i in 5..8 {
                assert_eq!(labels[4], labels[i], "{kind:?}");
            }
            assert_ne!(labels[0], labels[4], "{kind:?}");
        }
    }

    #[test]
    fn tiny_graphs() {
        let (eig, km) = cfgs();
        let one = CsrMatrix::from_triplets(1, &[]).unwrap();
        assert_eq!(
            bipartition(&one, CutKind::Alpha, &eig, &km).unwrap(),
            vec![0]
        );
        let two = CsrMatrix::from_undirected_edges(2, &[(0, 1, 1.0)]).unwrap();
        assert_eq!(
            bipartition(&two, CutKind::Alpha, &eig, &km).unwrap(),
            vec![0, 1]
        );
    }

    #[test]
    fn uniform_clique_still_makes_progress() {
        // A perfectly symmetric clique has no natural cut; the fallback must
        // still produce two non-empty sides.
        let mut edges = Vec::new();
        for i in 0..6usize {
            for j in (i + 1)..6 {
                edges.push((i, j, 1.0));
            }
        }
        let clique = CsrMatrix::from_undirected_edges(6, &edges).unwrap();
        let (eig, km) = cfgs();
        let labels = bipartition(&clique, CutKind::Alpha, &eig, &km).unwrap();
        assert!(is_proper_bipartition(&labels));
    }

    #[test]
    fn edgeless_graph_splits() {
        let a = CsrMatrix::from_triplets(4, &[]).unwrap();
        let (eig, km) = cfgs();
        let labels = bipartition(&a, CutKind::Normalized, &eig, &km).unwrap();
        assert!(is_proper_bipartition(&labels));
    }
}
