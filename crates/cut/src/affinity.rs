//! Affinity weighting of binary adjacency graphs.
//!
//! The AG/NG schemes apply α-Cut / normalized cut *directly on the road
//! graph*, whose links are binary adjacencies. The affinity between adjacent
//! segments is the Gaussian congestion similarity of their densities — the
//! node-level analogue of the superlink weight of Eq. 3 (with `|L_pq| = 1`).

use crate::error::{CutError, Result};
use roadpart_linalg::par::ThreadPool;
use roadpart_linalg::CsrMatrix;

/// Replaces each binary link `(i, j)` with the Gaussian similarity
/// `w_ij = exp(-(f_i - f_j)² / (2 σ²))` — the node-level analogue of
/// `σ²(ς)` in Eq. 3.
///
/// The bandwidth `σ` is a *robust* scale estimate, `1.4826 x MAD`
/// (median absolute deviation), falling back to the standard deviation when
/// the MAD vanishes. Traffic densities are heavy-tailed — a handful of
/// gridlocked segments can carry densities tens of times the median — and
/// a variance bandwidth would compress every typical density difference
/// toward similarity 1, reducing the cut to pure topology. (The *superlink*
/// weighting of Eq. 3 keeps the paper's literal variance: supernode
/// features are cluster means, already tail-free.)
///
/// When all features are equal (`σ = 0`) every weight is 1, the similarity
/// limit — the graph degenerates to its topology, which is the correct
/// behaviour for uniform congestion.
///
/// # Errors
/// Returns [`CutError::InvalidInput`] on length mismatch or non-finite
/// features.
pub fn gaussian_affinity(adj: &CsrMatrix, features: &[f64]) -> Result<CsrMatrix> {
    gaussian_affinity_par(adj, features, &ThreadPool::serial())
}

/// [`gaussian_affinity`] with the per-link weighting distributed over
/// `pool` in fixed row chunks. The weights are pure per-entry functions
/// evaluated into deterministic slots of the adjacency's own sparsity
/// pattern ([`CsrMatrix::map_entries_par`]), so the result is bit-identical
/// to the serial construction at any pool size — and the full triplet
/// sort/merge rebuild the historical path paid per time step disappears.
///
/// # Errors
/// Returns [`CutError::InvalidInput`] on length mismatch or non-finite
/// features.
pub fn gaussian_affinity_par(
    adj: &CsrMatrix,
    features: &[f64],
    pool: &ThreadPool,
) -> Result<CsrMatrix> {
    let n = adj.dim();
    if features.len() != n {
        return Err(CutError::InvalidInput(format!(
            "feature vector length {} != graph order {n}",
            features.len()
        )));
    }
    if features.iter().any(|f| !f.is_finite()) {
        return Err(CutError::InvalidInput("features must be finite".into()));
    }
    let var = {
        let sigma = robust_sigma(features);
        sigma * sigma
    };
    // Weights are floored at a tiny positive value so that links between
    // very dissimilar segments stay *structurally* present (entries mapped
    // to exact zeros are dropped, and the spatial-adjacency pattern must
    // survive for connectivity checks and partition-adjacency metrics).
    // The floor also means no entry maps to 0.0, so the affinity keeps the
    // adjacency's sparsity pattern exactly.
    const MIN_WEIGHT: f64 = 1e-12;
    Ok(adj.map_entries_par(pool, |i, j, _| {
        if var > 0.0 {
            let d = features[i] - features[j];
            (-(d * d) / (2.0 * var)).exp().max(MIN_WEIGHT)
        } else {
            1.0
        }
    })?)
}

/// Robust scale: `1.4826 x median(|f - median(f)|)`, the Gaussian-consistent
/// MAD estimator; falls back to the standard deviation for degenerate MAD
/// (e.g. more than half the values identical), and `0.0` for constant data.
///
/// A single scratch buffer serves both medians: it is sorted once for the
/// feature median, rewritten in place to `|f - med|`, and sorted again for
/// the MAD. The deviations form the same multiset as the historical
/// two-allocation version (absolute deviations of a permutation of the
/// features), and [`roadpart_linalg::ord::sort_f64`] is a total order, so
/// the resulting σ is bit-identical while one of the two temporary vectors
/// — previously re-allocated on every affinity construction — disappears.
fn robust_sigma(features: &[f64]) -> f64 {
    if features.is_empty() {
        return 0.0;
    }
    fn median_of_sorted(xs: &[f64]) -> f64 {
        let m = xs.len() / 2;
        if xs.len() % 2 == 1 {
            xs[m]
        } else {
            0.5 * (xs[m - 1] + xs[m])
        }
    }
    let mut scratch = features.to_vec();
    roadpart_linalg::ord::sort_f64(&mut scratch);
    let med = median_of_sorted(&scratch);
    scratch.iter_mut().for_each(|v| *v = (*v - med).abs());
    roadpart_linalg::ord::sort_f64(&mut scratch);
    let mad = median_of_sorted(&scratch);
    if mad > 0.0 {
        1.4826 * mad
    } else {
        // Streaming fallback over the original (unsorted) features, exactly
        // as before, so the degenerate-MAD path keeps its summation order.
        let mean = features.iter().sum::<f64>() / features.len() as f64;
        (features
            .iter()
            .map(|f| (f - mean) * (f - mean))
            .sum::<f64>()
            / features.len() as f64)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap()
    }

    #[test]
    fn similar_features_get_high_weight() {
        let a = gaussian_affinity(&path3(), &[1.0, 1.01, 5.0]).unwrap();
        // With the robust (MAD) bandwidth the 0.01 gap costs some weight but
        // remains far above the outlier link.
        assert!(a.get(0, 1) > 0.5);
        assert!(a.get(1, 2) < a.get(0, 1));
        assert!(a.get(1, 2) >= 1e-12, "links stay structurally present");
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn weights_bounded_in_unit_interval() {
        let a = gaussian_affinity(&path3(), &[0.0, 10.0, -3.0]).unwrap();
        for (_, _, w) in a.iter() {
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn uniform_features_degenerate_to_topology() {
        let a = gaussian_affinity(&path3(), &[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 1.0);
        assert_eq!(a.get(0, 2), 0.0); // non-links stay absent
    }

    #[test]
    fn validation() {
        assert!(gaussian_affinity(&path3(), &[1.0]).is_err());
        assert!(gaussian_affinity(&path3(), &[1.0, f64::NAN, 2.0]).is_err());
    }

    #[test]
    fn robust_to_heavy_tail() {
        // A gridlocked outlier must not wash out the similarity structure of
        // the body: with a variance bandwidth both body links would sit near
        // 1; the MAD bandwidth keeps them separated.
        let adj = CsrMatrix::from_undirected_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)],
        )
        .unwrap();
        let features = [0.010, 0.011, 0.030, 0.031, 5.0];
        let a = gaussian_affinity(&adj, &features).unwrap();
        let similar = a.get(0, 1); // 0.010 vs 0.011
        let across = a.get(1, 2); // 0.011 vs 0.030
        assert!(similar > 0.9, "similar pair weight {similar}");
        assert!(
            across < 0.8 * similar,
            "body structure must stay discriminated: {across} vs {similar}"
        );
        assert!(a.get(3, 4) < 1e-6, "outlier link should be near zero");
        assert!(a.get(3, 4) >= 1e-12, "but never structurally dropped");
    }

    #[test]
    fn parallel_affinity_is_bit_identical_to_serial() {
        // Pseudo-random ring + chords, heavy-tailed features: the parallel
        // construction must agree with the serial one bit for bit (same σ,
        // same per-link weights, same CSR layout).
        let n = 700; // > DEFAULT_CHUNK so the pool actually splits rows
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n, 1.0));
            if i % 7 == 0 {
                edges.push((i, (i + n / 3) % n, 1.0));
            }
        }
        let adj = CsrMatrix::from_undirected_edges(n, &edges).unwrap();
        let mut x = 0.42_f64;
        let features: Vec<f64> = (0..n)
            .map(|i| {
                x = (x * 997.0 + 0.13).fract();
                if i % 61 == 0 {
                    5.0 + 40.0 * x
                } else {
                    0.01 + 0.05 * x
                }
            })
            .collect();
        let serial = gaussian_affinity(&adj, &features).unwrap();
        for threads in [2, 4] {
            let pool = ThreadPool::new(threads);
            let par = gaussian_affinity_par(&adj, &features, &pool).unwrap();
            assert_eq!(serial.dim(), par.dim());
            let a: Vec<_> = serial.iter().collect();
            let b: Vec<_> = par.iter().collect();
            assert_eq!(a.len(), b.len());
            for ((ri, ci, wi), (rj, cj, wj)) in a.iter().zip(&b) {
                assert_eq!((ri, ci), (rj, cj));
                assert_eq!(wi.to_bits(), wj.to_bits(), "weight at ({ri},{ci})");
            }
        }
    }

    #[test]
    fn mad_fallback_to_stddev() {
        // More than half identical values: MAD = 0, std-dev fallback keeps a
        // usable bandwidth.
        let adj =
            CsrMatrix::from_undirected_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let features = [1.0, 1.0, 1.0, 2.0];
        let a = gaussian_affinity(&adj, &features).unwrap();
        assert!(a.get(0, 1) > 0.99);
        assert!(a.get(2, 3) < 0.99);
        assert!(a.get(2, 3) > 0.0);
    }
}
