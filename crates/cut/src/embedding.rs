//! Spectral embeddings (Algorithm 3 lines 3–8).
//!
//! Builds the `n x k` eigenvector matrix `Y` of either the α-Cut matrix
//! `M = d dᵀ / (1ᵀD1) − A` (Eq. 6) or the normalized Laplacian
//! `L_sym = I − D^{-1/2} A D^{-1/2}` (the normalized-cut baseline), then
//! row-normalizes it into `Z` (Eq. 8). Both matrices are applied
//! matrix-free so the supergraph adjacency is never densified.

use crate::error::{CutError, Result};
use roadpart_linalg::{
    sym_eigs, sym_eigs_recovering_ws, BlockedCsrMatrix, CsrMatrix, DenseMatrix, DiagScaledOp,
    EigenConfig, FallbackConfig, KernelLayout, RankOneUpdate, RecoveryLog, SymOp, Which, Workspace,
};
use serde::{Deserialize, Serialize};

/// Which spectral cut drives the embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutKind {
    /// The paper's k-way α-Cut (Eq. 5/6).
    Alpha,
    /// The normalized cut of Shi & Malik (baseline).
    Normalized,
}

/// Validates adjacency preconditions shared by both embeddings.
fn validate(adj: &CsrMatrix) -> Result<()> {
    if !adj.is_symmetric(1e-9) {
        return Err(CutError::InvalidInput(
            "adjacency matrix must be symmetric".into(),
        ));
    }
    if adj.iter().any(|(_, _, w)| w < 0.0) {
        return Err(CutError::InvalidInput(
            "adjacency weights must be non-negative".into(),
        ));
    }
    Ok(())
}

/// Solves for the `nev` smallest eigenvectors of the α-Cut operator built
/// on `base`. Generic over the base so both CSR layouts (row-major and
/// blocked, which produce bit-identical products) share one code path.
fn alpha_vectors<B: SymOp + Sync>(
    base: &B,
    d: Vec<f64>,
    scale: f64,
    nev: usize,
    eig: &EigenConfig,
) -> Result<DenseMatrix> {
    let op = RankOneUpdate::new(base, d, scale, -1.0)?;
    let dec = sym_eigs(&op, nev, Which::Smallest, eig)?;
    Ok(dec.vectors)
}

/// Counterpart of [`alpha_vectors`] for the normalized Laplacian.
fn ncut_vectors<B: SymOp + Sync>(
    base: &B,
    d_inv_sqrt: Vec<f64>,
    nev: usize,
    eig: &EigenConfig,
) -> Result<DenseMatrix> {
    let op = DiagScaledOp::new(base, d_inv_sqrt, -1.0, 1.0)?;
    let dec = sym_eigs(&op, nev, Which::Smallest, eig)?;
    Ok(dec.vectors)
}

/// The `k` smallest eigenvectors of the α-Cut matrix as columns of an
/// `n x k` matrix (the relaxed cluster indicator vectors).
///
/// # Errors
/// Propagates eigensolver failures; rejects asymmetric or negative input.
pub fn alpha_embedding(adj: &CsrMatrix, k: usize, eig: &EigenConfig) -> Result<DenseMatrix> {
    validate(adj)?;
    let n = adj.dim();
    let nev = k.min(n);
    let d = adj.degrees();
    let s: f64 = d.iter().sum();
    // M = d d^T / s - A; for an edgeless graph (s = 0) M = -A = 0.
    let scale = if s > 0.0 { 1.0 / s } else { 0.0 };
    match eig.layout {
        // LegacyScalar keeps the row-major operator; the layout only
        // switches the solver-internal reduction order (see linalg::layout).
        KernelLayout::RowMajor | KernelLayout::LegacyScalar => {
            alpha_vectors(adj, d, scale, nev, eig)
        }
        KernelLayout::Blocked => {
            alpha_vectors(&BlockedCsrMatrix::from_csr(adj), d, scale, nev, eig)
        }
    }
}

/// The `k` smallest eigenvectors of the normalized Laplacian as columns of
/// an `n x k` matrix.
///
/// Zero-degree (isolated) nodes get `d^{-1/2} = 0`: their rows of `L_sym`
/// reduce to the identity, leaving them spectrally inert, and they fall out
/// as singleton components later in the pipeline.
///
/// # Errors
/// Propagates eigensolver failures; rejects asymmetric or negative input.
pub fn ncut_embedding(adj: &CsrMatrix, k: usize, eig: &EigenConfig) -> Result<DenseMatrix> {
    validate(adj)?;
    let n = adj.dim();
    let nev = k.min(n);
    let d_inv_sqrt: Vec<f64> = adj
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    match eig.layout {
        KernelLayout::RowMajor | KernelLayout::LegacyScalar => {
            ncut_vectors(adj, d_inv_sqrt, nev, eig)
        }
        KernelLayout::Blocked => {
            ncut_vectors(&BlockedCsrMatrix::from_csr(adj), d_inv_sqrt, nev, eig)
        }
    }
}

/// Dispatches to the embedding matching `kind`.
///
/// # Errors
/// See [`alpha_embedding`] / [`ncut_embedding`].
pub fn embedding(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    eig: &EigenConfig,
) -> Result<DenseMatrix> {
    match kind {
        CutKind::Alpha => alpha_embedding(adj, k, eig),
        CutKind::Normalized => ncut_embedding(adj, k, eig),
    }
}

/// [`embedding`] behind the solver fallback ladder: non-convergence and
/// non-finite Ritz values trigger progressively more forgiving solver
/// configurations instead of failing the cut outright. Every attempt is
/// recorded in `log`.
///
/// # Errors
/// Rejects asymmetric or negative input immediately; returns the last
/// rung's numerical error if the whole ladder is exhausted.
pub fn embedding_recovering(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    eig: &EigenConfig,
    fallback: &FallbackConfig,
    log: &mut RecoveryLog,
) -> Result<DenseMatrix> {
    embedding_recovering_ws(adj, k, kind, eig, fallback, log, &mut Workspace::new())
}

/// [`embedding_recovering`] drawing every solver scratch buffer from `ws`.
///
/// Passing the same workspace across calls (the warm-solve loop of the
/// online engine) keeps the Lanczos restart loop allocation-free after the
/// first solve; results are bit-identical to the fresh-workspace path.
///
/// # Errors
/// Same as [`embedding_recovering`].
#[allow(clippy::too_many_arguments)]
pub fn embedding_recovering_ws(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    eig: &EigenConfig,
    fallback: &FallbackConfig,
    log: &mut RecoveryLog,
    ws: &mut Workspace,
) -> Result<DenseMatrix> {
    validate(adj)?;
    let n = adj.dim();
    let nev = k.min(n);
    match eig.layout {
        KernelLayout::RowMajor | KernelLayout::LegacyScalar => {
            recovering_vectors(adj, adj, kind, eig, fallback, log, ws, nev)
        }
        KernelLayout::Blocked => {
            let blocked = BlockedCsrMatrix::from_csr(adj);
            recovering_vectors(adj, &blocked, kind, eig, fallback, log, ws, nev)
        }
    }
}

/// Shared body of [`embedding_recovering_ws`], generic over the operator
/// base layout. `adj` supplies the degree vector (identical under both
/// layouts); `base` is what the solver applies.
#[allow(clippy::too_many_arguments)]
fn recovering_vectors<B: SymOp + Sync>(
    adj: &CsrMatrix,
    base: &B,
    kind: CutKind,
    eig: &EigenConfig,
    fallback: &FallbackConfig,
    log: &mut RecoveryLog,
    ws: &mut Workspace,
    nev: usize,
) -> Result<DenseMatrix> {
    match kind {
        CutKind::Alpha => {
            let d = adj.degrees();
            let s: f64 = d.iter().sum();
            let scale = if s > 0.0 { 1.0 / s } else { 0.0 };
            let op = RankOneUpdate::new(base, d, scale, -1.0)?;
            let dec = sym_eigs_recovering_ws(&op, nev, Which::Smallest, eig, fallback, log, ws)?;
            Ok(dec.vectors)
        }
        CutKind::Normalized => {
            let d_inv_sqrt: Vec<f64> = adj
                .degrees()
                .iter()
                .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
                .collect();
            let op = DiagScaledOp::new(base, d_inv_sqrt, -1.0, 1.0)?;
            let dec = sym_eigs_recovering_ws(&op, nev, Which::Smallest, eig, fallback, log, ws)?;
            Ok(dec.vectors)
        }
    }
}

/// Row-normalizes `Y` into `Z` (Eq. 8): each row is scaled to unit length.
/// All-zero rows (isolated nodes) are left as zero.
pub fn row_normalize(y: &mut DenseMatrix) {
    for i in 0..y.rows() {
        let row = y.row_mut(i);
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in row {
                *v /= norm;
            }
        }
    }
}

/// Builds the α-Cut matrix densely (tests and tiny graphs only) so its
/// algebra can be checked against the operator form.
pub fn dense_alpha_matrix(adj: &CsrMatrix) -> DenseMatrix {
    let n = adj.dim();
    let d = adj.degrees();
    let s: f64 = d.iter().sum();
    let a = adj.to_dense();
    DenseMatrix::from_fn(n, n, |i, j| {
        let rank1 = if s > 0.0 { d[i] * d[j] / s } else { 0.0 };
        rank1 - a.get(i, j)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadpart_linalg::eigh;

    /// Two triangles joined by one weak link — an obvious 2-partition.
    fn two_triangles() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.05),
            ],
        )
        .unwrap()
    }

    #[test]
    fn alpha_embedding_matches_dense_eigensolve() {
        let a = two_triangles();
        let y = alpha_embedding(&a, 2, &EigenConfig::default()).unwrap();
        let dense = eigh(&dense_alpha_matrix(&a)).unwrap();
        // Column spans must agree: check eigenvalue residuals of y columns.
        let m = dense_alpha_matrix(&a);
        for c in 0..2 {
            let col = y.col(c);
            let mut mc = vec![0.0; 6];
            m.matvec(&col, &mut mc).unwrap();
            let lambda = dense.values[c];
            for i in 0..6 {
                assert!(
                    (mc[i] - lambda * col[i]).abs() < 1e-8,
                    "column {c} is not the eigenvector of lambda_{c}"
                );
            }
        }
    }

    #[test]
    fn alpha_embedding_separates_clusters() {
        let a = two_triangles();
        let mut y = alpha_embedding(&a, 2, &EigenConfig::default()).unwrap();
        row_normalize(&mut y);
        // Rows within each triangle should nearly coincide, across should not.
        let dist = |p: usize, q: usize| -> f64 {
            y.row(p)
                .iter()
                .zip(y.row(q))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(0, 1) < 0.2);
        assert!(dist(3, 4) < 0.2);
        assert!(dist(0, 3) > 0.5, "cross-cluster distance {}", dist(0, 3));
    }

    #[test]
    fn ncut_embedding_constant_direction_for_connected_graph() {
        // The smallest eigenvalue of L_sym is 0 with eigenvector D^{1/2} 1.
        let a = two_triangles();
        let y = ncut_embedding(&a, 1, &EigenConfig::default()).unwrap();
        let d = a.degrees();
        let col = y.col(0);
        // col should be proportional to sqrt(d).
        let ratio: Vec<f64> = col.iter().zip(&d).map(|(c, dd)| c / dd.sqrt()).collect();
        for w in ratio.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-8, "ratios: {ratio:?}");
        }
    }

    #[test]
    fn row_normalize_makes_unit_rows() {
        let mut y = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        row_normalize(&mut y);
        assert!((y.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((y.get(0, 1) - 0.8).abs() < 1e-12);
        // Zero row untouched.
        assert_eq!(y.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn rejects_asymmetric_and_negative() {
        let asym = CsrMatrix::from_triplets(2, &[(0, 1, 1.0)]).unwrap();
        assert!(alpha_embedding(&asym, 1, &EigenConfig::default()).is_err());
        let neg = CsrMatrix::from_undirected_edges(2, &[(0, 1, -1.0)]).unwrap();
        assert!(ncut_embedding(&neg, 1, &EigenConfig::default()).is_err());
    }

    #[test]
    fn k_clamped_to_dimension() {
        let a = two_triangles();
        let y = alpha_embedding(&a, 10, &EigenConfig::default()).unwrap();
        assert_eq!(y.cols(), 6);
    }

    #[test]
    fn edgeless_graph_handled() {
        let a = CsrMatrix::from_triplets(4, &[]).unwrap();
        let y = alpha_embedding(&a, 2, &EigenConfig::default()).unwrap();
        assert_eq!(y.rows(), 4);
        let y2 = ncut_embedding(&a, 2, &EigenConfig::default()).unwrap();
        assert_eq!(y2.cols(), 2);
    }
}
