//! The full k-way spectral partitioning pipeline (Algorithm 3).
//!
//! 1. build the cut matrix (α-Cut `M` or normalized Laplacian) and take its
//!    `k` smallest eigenvectors → `Y` (lines 1–7);
//! 2. row-normalize into `Z` (Eq. 8, line 8);
//! 3. k-means the rows of `Z` into `k` clusters (lines 9–10);
//! 4. extract connected components inside each cluster → k′ ≥ k disjoint,
//!    spatially connected partitions (line 11);
//! 5. refine to exactly `k`: global recursive bipartitioning of the
//!    condensed partition-connectivity graph for k′ > k (lines 12–24),
//!    largest-first splitting for k′ < k.

use crate::embedding::{embedding_recovering_ws, row_normalize, CutKind};
use crate::error::{CutError, Result};
use crate::partition::Partition;
use crate::refine::{partition_connectivity, recursive_bipartition, split_to_k};
use roadpart_cluster::{constrained_components, kmeans, KMeansConfig};
use roadpart_linalg::{
    CsrMatrix, DenseMatrix, EigenConfig, FallbackConfig, RecoveryLog, Workspace,
};
use serde::{Deserialize, Serialize};

/// How k′ ≠ k is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefineStrategy {
    /// Global recursive bipartitioning of the condensed graph (the paper's
    /// choice, efficient for large k′).
    RecursiveBipartition,
    /// Greedy pruning: merge the most-connected adjacent pair until k
    /// (the paper's alternative; quadratic in k′).
    GreedyMerge,
    /// Keep the k′ natural partitions ("These k′ partitions may be accepted
    /// as the final result", §5.4).
    AcceptNatural,
}

/// Configuration for [`spectral_partition`].
#[derive(Debug, Clone)]
pub struct SpectralConfig {
    /// Eigensolver settings.
    pub eigen: EigenConfig,
    /// Eigenspace k-means settings (seeded; the paper reports medians over
    /// repeated runs because of this randomization).
    pub kmeans: KMeansConfig,
    /// k′ ≠ k resolution strategy.
    pub refine: RefineStrategy,
    /// Re-split any final partition that ends up spatially disconnected
    /// (condition C.2). Recursive bipartitioning of the condensed graph can
    /// in principle group non-adjacent fine partitions; this restores
    /// connectivity as a post-pass.
    pub enforce_connectivity: bool,
    /// Solver fallback ladder applied to the main spectral embedding.
    pub fallback: FallbackConfig,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            eigen: EigenConfig::default(),
            kmeans: KMeansConfig::default(),
            refine: RefineStrategy::RecursiveBipartition,
            enforce_connectivity: true,
            fallback: FallbackConfig::default(),
        }
    }
}

impl SpectralConfig {
    /// Re-seeds both stochastic components (for median-over-runs protocols).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.kmeans.seed = seed;
        self.eigen.seed = seed ^ 0x9e37_79b9_7f4a_7c15;
        self
    }

    /// Sets the thread pool for every parallel kernel of the spectral
    /// pipeline (eigensolver applies and eigenspace k-means). Purely a
    /// performance knob: all kernels are bit-identical at any pool size.
    pub fn with_pool(mut self, pool: roadpart_linalg::ThreadPool) -> Self {
        self.eigen.pool = pool;
        self.kmeans.pool = pool;
        self
    }

    /// Convenience for [`SpectralConfig::with_pool`] from a thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_pool(roadpart_linalg::ThreadPool::new(threads))
    }

    /// The pool the spectral kernels run on.
    pub fn pool(&self) -> roadpart_linalg::ThreadPool {
        self.eigen.pool
    }
}

/// Reusable spectral state captured from a completed partition run.
///
/// When the graph changes only slightly between runs (the online
/// repartitioning setting), feeding the previous run's artifacts back into
/// [`spectral_partition_warm`] seeds the Lanczos iteration with the old
/// eigenvectors and eigenspace k-means with the old centroids, cutting the
/// dominant costs of the pipeline. Both hints are validated downstream and
/// silently dropped when stale (dimension mismatch, non-finite entries), so
/// artifacts from *any* earlier run are safe to pass.
#[derive(Debug, Clone)]
pub struct SpectralArtifacts {
    /// `n x k` eigenvector embedding `Y` *before* row normalization — the
    /// actual (approximate) eigenvectors of the cut matrix, suitable as a
    /// Krylov warm start.
    pub eigenvectors: DenseMatrix,
    /// `k x k` eigenspace k-means centroids over the row-normalized `Z`.
    pub centroids: DenseMatrix,
}

impl SpectralArtifacts {
    /// Artifacts carrying no reusable state (always a valid, inert input).
    pub fn empty() -> Self {
        Self {
            eigenvectors: DenseMatrix::zeros(0, 0),
            centroids: DenseMatrix::zeros(0, 0),
        }
    }
}

/// Partitions a weighted symmetric graph into `k` groups using the chosen
/// spectral cut. See the module docs for the pipeline.
///
/// # Errors
/// Returns [`CutError::BadPartitionCount`] for `k == 0` or `k > n`, plus any
/// eigensolver/k-means failure.
pub fn spectral_partition(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    cfg: &SpectralConfig,
) -> Result<Partition> {
    let mut log = RecoveryLog::new();
    spectral_partition_recovering(adj, k, kind, cfg, &mut log)
}

/// [`spectral_partition`] that additionally reports solver fallback
/// activity: the main embedding runs behind the ladder configured in
/// [`SpectralConfig::fallback`], and every attempt lands in `log`.
///
/// # Errors
/// Same as [`spectral_partition`].
pub fn spectral_partition_recovering(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    cfg: &SpectralConfig,
    log: &mut RecoveryLog,
) -> Result<Partition> {
    spectral_partition_warm(adj, k, kind, cfg, None, log).map(|(p, _)| p)
}

/// [`spectral_partition_recovering`] with warm-start support: optionally
/// seeds the eigensolver and k-means from a previous run's
/// [`SpectralArtifacts`], and returns this run's artifacts for the next one.
///
/// Stale artifacts (wrong dimensions for the current graph or `k`) are
/// ignored per-component, so callers can pass whatever they captured last
/// without revalidating. For `k == n` (singleton partitions) no spectral
/// work happens and empty artifacts are returned.
///
/// # Errors
/// Same as [`spectral_partition`].
pub fn spectral_partition_warm(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    cfg: &SpectralConfig,
    warm: Option<&SpectralArtifacts>,
    log: &mut RecoveryLog,
) -> Result<(Partition, SpectralArtifacts)> {
    let mut ws = Workspace::new();
    spectral_partition_warm_ws(adj, k, kind, cfg, warm, log, &mut ws)
}

/// [`spectral_partition_warm`] drawing the eigensolver's scratch buffers
/// from a caller-owned [`Workspace`].
///
/// The online repartitioning engine calls this every epoch with a retained
/// workspace, so after the first (cold) solve the spectral stage of every
/// subsequent epoch runs its hot loops allocation-free. Results are
/// bit-identical to [`spectral_partition_warm`] — the workspace only
/// recycles buffer *capacity*, never contents.
///
/// # Errors
/// Same as [`spectral_partition`].
#[allow(clippy::too_many_arguments)]
pub fn spectral_partition_warm_ws(
    adj: &CsrMatrix,
    k: usize,
    kind: CutKind,
    cfg: &SpectralConfig,
    warm: Option<&SpectralArtifacts>,
    log: &mut RecoveryLog,
    ws: &mut Workspace,
) -> Result<(Partition, SpectralArtifacts)> {
    let n = adj.dim();
    if k == 0 || k > n {
        return Err(CutError::BadPartitionCount {
            requested: k,
            nodes: n,
        });
    }
    if k == n {
        let p = Partition::from_labels(&(0..n).collect::<Vec<_>>());
        return Ok((p, SpectralArtifacts::empty()));
    }

    let mut eigen_cfg = cfg.eigen.clone();
    let mut kmeans_cfg = cfg.kmeans.clone();
    if let Some(w) = warm {
        if w.eigenvectors.rows() == n && w.eigenvectors.cols() > 0 {
            eigen_cfg.start = Some(w.eigenvectors.clone());
        }
        if w.centroids.rows() == k && w.centroids.cols() > 0 {
            kmeans_cfg.warm_start = Some(w.centroids.clone());
        }
    }

    // Lines 1-8: embedding (behind the fallback ladder). Keep the raw
    // eigenvectors `Y` for the artifacts; the pipeline continues on the
    // row-normalized copy `Z` (Eq. 8).
    let y = embedding_recovering_ws(adj, k, kind, &eigen_cfg, &cfg.fallback, log, ws)?;
    let mut z = y.clone();
    row_normalize(&mut z);
    // Lines 9-10: eigenspace k-means.
    let km = kmeans(&z, k, &kmeans_cfg)?;
    // Line 11: connected components within clusters -> k' fine partitions.
    let comp = constrained_components(adj, Some(&km.assignments))?;
    let fine = Partition::from_labels(&comp);

    let mut result = refine_to_k(adj, &fine, k, kind, cfg)?;
    if cfg.enforce_connectivity {
        // Alternate connectivity enforcement and re-refinement a bounded
        // number of times; if the graph fundamentally cannot host k
        // connected partitions (more components than k), connectivity wins.
        for _ in 0..2 {
            let connected = enforce_connectivity(adj, &result)?;
            if connected.k() == result.k() {
                break;
            }
            result = connected;
            if result.k() > k {
                result = refine_to_k(adj, &result, k, kind, cfg)?;
            }
        }
        result = enforce_connectivity(adj, &result)?;
    }
    let artifacts = SpectralArtifacts {
        eigenvectors: y,
        centroids: km.centers,
    };
    Ok((result, artifacts))
}

/// Applies the configured refinement strategy to move from k′ to k.
fn refine_to_k(
    adj: &CsrMatrix,
    fine: &Partition,
    k: usize,
    kind: CutKind,
    cfg: &SpectralConfig,
) -> Result<Partition> {
    use std::cmp::Ordering;
    let kp = fine.k();
    match kp.cmp(&k) {
        Ordering::Equal => Ok(fine.clone()),
        Ordering::Less => split_to_k(adj, fine, k, kind, &cfg.eigen, &cfg.kmeans),
        Ordering::Greater => match cfg.refine {
            RefineStrategy::AcceptNatural => Ok(fine.clone()),
            RefineStrategy::RecursiveBipartition => {
                let conn = partition_connectivity(adj, &fine.groups())?;
                let meta = recursive_bipartition(&conn, k, kind, &cfg.eigen, &cfg.kmeans)?;
                Ok(fine.compose(&meta))
            }
            RefineStrategy::GreedyMerge => {
                let conn = partition_connectivity(adj, &fine.groups())?;
                let meta = crate::refine::greedy_merge(&conn, k)?;
                Ok(fine.compose(&meta))
            }
        },
    }
}

/// Splits spatially disconnected partitions into their components (C.2).
fn enforce_connectivity(adj: &CsrMatrix, p: &Partition) -> Result<Partition> {
    let comp = constrained_components(adj, Some(p.labels()))?;
    Ok(Partition::from_labels(&comp))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain of `c` cliques of size `s`, bridged weakly.
    fn clique_chain(c: usize, s: usize) -> CsrMatrix {
        let mut edges = Vec::new();
        for ci in 0..c {
            let b = ci * s;
            for i in 0..s {
                for j in (i + 1)..s {
                    edges.push((b + i, b + j, 1.0));
                }
            }
            if ci > 0 {
                edges.push((b - 1, b, 0.02));
            }
        }
        CsrMatrix::from_undirected_edges(c * s, &edges).unwrap()
    }

    #[test]
    fn recovers_planted_partitions_both_kinds() {
        let adj = clique_chain(3, 5);
        for kind in [CutKind::Alpha, CutKind::Normalized] {
            let p = spectral_partition(&adj, 3, kind, &SpectralConfig::default()).unwrap();
            assert_eq!(p.k(), 3, "{kind:?}");
            for c in 0..3 {
                let l = p.label(c * 5);
                for i in 1..5 {
                    assert_eq!(p.label(c * 5 + i), l, "{kind:?} clique {c}");
                }
            }
        }
    }

    #[test]
    fn partitions_are_connected() {
        let adj = clique_chain(4, 4);
        for k in 2..=5 {
            let p =
                spectral_partition(&adj, k, CutKind::Alpha, &SpectralConfig::default()).unwrap();
            // Every partition must be internally connected (C.2).
            let comp = constrained_components(&adj, Some(p.labels())).unwrap();
            let recount = Partition::from_labels(&comp);
            assert_eq!(recount.k(), p.k(), "k = {k}: disconnected partition");
        }
    }

    #[test]
    fn k_bounds() {
        let adj = clique_chain(2, 3);
        assert!(spectral_partition(&adj, 0, CutKind::Alpha, &SpectralConfig::default()).is_err());
        assert!(spectral_partition(&adj, 7, CutKind::Alpha, &SpectralConfig::default()).is_err());
        let p = spectral_partition(&adj, 6, CutKind::Alpha, &SpectralConfig::default()).unwrap();
        assert_eq!(p.k(), 6); // k == n: singletons
    }

    #[test]
    fn k1_on_connected_graph() {
        let adj = clique_chain(2, 3);
        let p = spectral_partition(&adj, 1, CutKind::Alpha, &SpectralConfig::default()).unwrap();
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn disconnected_graph_cannot_go_below_component_count() {
        // Two disjoint cliques, k = 1: connectivity enforcement keeps 2.
        let mut edges = Vec::new();
        for b in [0usize, 3] {
            edges.push((b, b + 1, 1.0));
            edges.push((b + 1, b + 2, 1.0));
            edges.push((b, b + 2, 1.0));
        }
        let adj = CsrMatrix::from_undirected_edges(6, &edges).unwrap();
        let p = spectral_partition(&adj, 1, CutKind::Alpha, &SpectralConfig::default()).unwrap();
        assert_eq!(
            p.k(),
            2,
            "two components cannot form one connected partition"
        );
    }

    #[test]
    fn greedy_merge_strategy_also_reaches_k() {
        let adj = clique_chain(4, 4);
        let cfg = SpectralConfig {
            refine: RefineStrategy::GreedyMerge,
            ..SpectralConfig::default()
        };
        let p = spectral_partition(&adj, 2, CutKind::Alpha, &cfg).unwrap();
        assert_eq!(p.k(), 2);
    }

    #[test]
    fn accept_natural_keeps_k_prime() {
        let adj = clique_chain(4, 4);
        let cfg = SpectralConfig {
            refine: RefineStrategy::AcceptNatural,
            ..SpectralConfig::default()
        };
        let p = spectral_partition(&adj, 2, CutKind::Alpha, &cfg).unwrap();
        assert!(p.k() >= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let adj = clique_chain(3, 4);
        let cfg = SpectralConfig::default().with_seed(7);
        let a = spectral_partition(&adj, 3, CutKind::Alpha, &cfg).unwrap();
        let b = spectral_partition(&adj, 3, CutKind::Alpha, &cfg).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn warm_path_reuses_artifacts_and_matches_cold_result() {
        let adj = clique_chain(3, 5);
        // Force the iterative solver so the eigenvector warm start is
        // actually exercised (the graph is far below the default cutoff).
        let mut cfg = SpectralConfig::default().with_seed(11);
        cfg.eigen.dense_cutoff = 4;

        let mut log = RecoveryLog::new();
        let (cold, artifacts) =
            spectral_partition_warm(&adj, 3, CutKind::Alpha, &cfg, None, &mut log).unwrap();
        assert_eq!(artifacts.eigenvectors.rows(), adj.dim());
        assert_eq!(artifacts.eigenvectors.cols(), 3);
        assert_eq!(artifacts.centroids.rows(), 3);

        let (warm, next) =
            spectral_partition_warm(&adj, 3, CutKind::Alpha, &cfg, Some(&artifacts), &mut log)
                .unwrap();
        assert_eq!(warm.labels(), cold.labels(), "same graph -> same result");
        assert_eq!(next.eigenvectors.rows(), adj.dim());
    }

    #[test]
    fn stale_artifacts_are_ignored() {
        let adj = clique_chain(3, 5);
        let cfg = SpectralConfig::default().with_seed(11);
        // Artifacts from a differently-sized problem: wrong n, wrong k.
        let stale = SpectralArtifacts {
            eigenvectors: roadpart_linalg::DenseMatrix::zeros(7, 2),
            centroids: roadpart_linalg::DenseMatrix::zeros(5, 9),
        };
        let mut log = RecoveryLog::new();
        let (p, _) =
            spectral_partition_warm(&adj, 3, CutKind::Alpha, &cfg, Some(&stale), &mut log).unwrap();
        assert_eq!(p.k(), 3);
        let mut log2 = RecoveryLog::new();
        let (p2, _) = spectral_partition_warm(
            &adj,
            3,
            CutKind::Alpha,
            &cfg,
            Some(&SpectralArtifacts::empty()),
            &mut log2,
        )
        .unwrap();
        assert_eq!(p2.labels(), p.labels());
    }

    #[test]
    fn injected_solver_failure_recovers_with_valid_partition() {
        let adj = clique_chain(3, 5);
        let mut cfg = SpectralConfig::default();
        cfg.fallback.inject_failures = 2; // baseline + relaxed rungs fail
        let mut log = RecoveryLog::new();
        let p = spectral_partition_recovering(&adj, 3, CutKind::Alpha, &cfg, &mut log).unwrap();
        assert_eq!(p.k(), 3);
        assert_eq!(log.failures(), 2);
        assert!(log.events.last().unwrap().succeeded);
        // The recovered result still lands the planted cliques.
        for c in 0..3 {
            let l = p.label(c * 5);
            for i in 1..5 {
                assert_eq!(p.label(c * 5 + i), l);
            }
        }
    }
}
