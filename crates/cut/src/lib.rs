//! # roadpart-cut
//!
//! Spectral graph cuts for road-network partitioning — the algorithmic core
//! of Anwar et al. (EDBT 2014), §5:
//!
//! * [`alpha::alpha_cut`] — the paper's novel k-way **α-Cut**: minimize a
//!   per-partition balance of average cut and average association via the
//!   spectral relaxation of the matrix `M = (1ᵀD)ᵀ(1ᵀD)/(1ᵀD1) − A`;
//! * [`ncut::normalized_cut`] — the Shi–Malik normalized-cut baseline on
//!   the same pipeline;
//! * [`kway::spectral_partition`] — the shared Algorithm-3 pipeline:
//!   embedding → row normalization (Eq. 8) → eigenspace k-means →
//!   within-cluster connected components → refinement to exactly `k`;
//! * [`refine`] — partition-connectivity condensation, global recursive
//!   bipartitioning, greedy merging, and largest-first splitting;
//! * [`affinity::gaussian_affinity`] — congestion-similarity weighting of
//!   binary road-graph links for the AG/NG direct schemes.

#![warn(missing_docs)]

pub mod affinity;
pub mod alpha;
pub mod bipartition;
pub mod embedding;
pub mod error;
pub mod kway;
pub mod ncut;
pub mod partition;
pub mod refine;

pub use affinity::{gaussian_affinity, gaussian_affinity_par};
pub use alpha::alpha_cut;
pub use bipartition::bipartition;
pub use embedding::{
    alpha_embedding, dense_alpha_matrix, embedding, embedding_recovering, embedding_recovering_ws,
    ncut_embedding, row_normalize, CutKind,
};
pub use error::{CutError, Result};
pub use kway::{
    spectral_partition, spectral_partition_recovering, spectral_partition_warm,
    spectral_partition_warm_ws, RefineStrategy, SpectralArtifacts, SpectralConfig,
};
pub use ncut::normalized_cut;
pub use partition::Partition;
pub use refine::{greedy_merge, partition_connectivity, recursive_bipartition, split_to_k};
