//! Error types for the traffic substrate.

use std::fmt;

/// Errors produced by routing, simulation, and traffic generation.
#[derive(Debug)]
pub enum TrafficError {
    /// No route exists between the requested intersections.
    NoRoute {
        /// Origin intersection index.
        from: usize,
        /// Destination intersection index.
        to: usize,
    },
    /// Configuration violates a documented precondition.
    InvalidConfig(String),
    /// A density sample violated the data contract (empty, wrong length,
    /// non-finite or negative values).
    InvalidData(String),
    /// Underlying network error.
    Net(roadpart_net::NetError),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::NoRoute { from, to } => {
                write!(f, "no route from intersection {from} to {to}")
            }
            TrafficError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            TrafficError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            TrafficError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for TrafficError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrafficError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<roadpart_net::NetError> for TrafficError {
    fn from(e: roadpart_net::NetError) -> Self {
        TrafficError::Net(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TrafficError>;
