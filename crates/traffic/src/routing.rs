//! Shortest-path routing over the directed primal network.
//!
//! A binary-heap Dijkstra over intersections, with segment costs supplied by
//! a closure so callers can route on free-flow time, congested time, or
//! plain distance.

use crate::error::{Result, TrafficError};
use roadpart_net::{IntersectionId, RoadNetwork, SegmentId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority-queue entry ordered by ascending cost.
#[derive(PartialEq)]
struct QueueEntry {
    cost: f64,
    node: usize,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; the total order keeps the comparator
        // consistent even for non-finite costs.
        other.cost.total_cmp(&self.cost)
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable Dijkstra workspace. Allocating once and routing many trips is
/// substantially faster than per-trip allocation for large networks.
pub struct Router<'a> {
    net: &'a RoadNetwork,
    dist: Vec<f64>,
    prev_seg: Vec<Option<SegmentId>>,
    touched: Vec<usize>,
}

impl<'a> Router<'a> {
    /// Creates a router bound to a network.
    pub fn new(net: &'a RoadNetwork) -> Self {
        let n = net.intersection_count();
        Self {
            net,
            dist: vec![f64::INFINITY; n],
            prev_seg: vec![None; n],
            touched: Vec::new(),
        }
    }

    /// Computes the minimum-cost route from `from` to `to` as a sequence of
    /// segment ids, where `cost(segment)` gives each segment's traversal
    /// cost (must be positive and finite).
    ///
    /// # Errors
    /// Returns [`TrafficError::NoRoute`] when `to` is unreachable.
    pub fn route(
        &mut self,
        from: IntersectionId,
        to: IntersectionId,
        mut cost: impl FnMut(SegmentId) -> f64,
    ) -> Result<Vec<SegmentId>> {
        // Reset only the entries touched by the previous query.
        for &i in &self.touched {
            self.dist[i] = f64::INFINITY;
            self.prev_seg[i] = None;
        }
        self.touched.clear();

        let (src, dst) = (from.index(), to.index());
        self.dist[src] = 0.0;
        self.touched.push(src);
        let mut heap = BinaryHeap::new();
        heap.push(QueueEntry {
            cost: 0.0,
            node: src,
        });

        while let Some(QueueEntry { cost: d, node }) = heap.pop() {
            if node == dst {
                break;
            }
            if d > self.dist[node] {
                continue; // stale entry
            }
            for &seg_id in self.net.outgoing(IntersectionId::from_index(node)) {
                let seg = self.net.segment(seg_id);
                let w = cost(seg_id);
                debug_assert!(w > 0.0 && w.is_finite(), "segment cost must be positive");
                let next = seg.to.index();
                let nd = d + w;
                if nd < self.dist[next] {
                    if self.dist[next].is_infinite() {
                        self.touched.push(next);
                    }
                    self.dist[next] = nd;
                    self.prev_seg[next] = Some(seg_id);
                    heap.push(QueueEntry {
                        cost: nd,
                        node: next,
                    });
                }
            }
        }

        if self.dist[dst].is_infinite() {
            return Err(TrafficError::NoRoute { from: src, to: dst });
        }
        // Walk predecessors back to the origin.
        let mut route = Vec::new();
        let mut at = dst;
        while at != src {
            // A finite distance guarantees a predecessor chain; a broken
            // chain means internal state corruption, reported as no-route.
            let Some(seg_id) = self.prev_seg[at] else {
                return Err(TrafficError::NoRoute { from: src, to: dst });
            };
            route.push(seg_id);
            at = self.net.segment(seg_id).from.index();
        }
        route.reverse();
        Ok(route)
    }

    /// Cost of the last computed route's destination (for tests/telemetry).
    pub fn last_cost(&self, to: IntersectionId) -> f64 {
        self.dist[to.index()]
    }
}

/// Free-flow travel time of a segment in seconds.
#[inline]
pub fn free_flow_time(net: &RoadNetwork, seg: SegmentId) -> f64 {
    let s = net.segment(seg);
    s.length_m / s.free_speed_mps
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadpart_net::RoadNetworkBuilder;

    /// 0 -> 1 -> 2 line plus a slow direct shortcut 0 -> 2.
    fn net_with_shortcut() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let p0 = b.intersection(0.0, 0.0);
        let p1 = b.intersection(100.0, 0.0);
        let p2 = b.intersection(200.0, 0.0);
        b.one_way_road(p0, p1); // seg 0
        b.one_way_road(p1, p2); // seg 1
        b.one_way_road(p0, p2); // seg 2 (direct, 200 m)
        b.build().unwrap()
    }

    #[test]
    fn picks_cheaper_route() {
        let net = net_with_shortcut();
        let mut router = Router::new(&net);
        // Uniform per-segment cost: direct (1 segment) wins.
        let route = router
            .route(IntersectionId(0), IntersectionId(2), |_| 1.0)
            .unwrap();
        assert_eq!(route.len(), 1);
        assert_eq!(route[0], SegmentId(2));
        // Distance cost: both 200 m; free-flow tie broken deterministically,
        // but penalizing the shortcut flips the choice.
        let route = router
            .route(IntersectionId(0), IntersectionId(2), |s| {
                if s == SegmentId(2) {
                    1000.0
                } else {
                    net.segment(s).length_m
                }
            })
            .unwrap();
        assert_eq!(route, vec![SegmentId(0), SegmentId(1)]);
    }

    #[test]
    fn unreachable_reports_no_route() {
        let mut b = RoadNetworkBuilder::new();
        let p0 = b.intersection(0.0, 0.0);
        let p1 = b.intersection(100.0, 0.0);
        b.one_way_road(p1, p0); // only wrong-direction edge
        let net = b.build().unwrap();
        let mut router = Router::new(&net);
        assert!(matches!(
            router.route(IntersectionId(0), IntersectionId(1), |_| 1.0),
            Err(TrafficError::NoRoute { from: 0, to: 1 })
        ));
    }

    #[test]
    fn trivial_route_to_self_is_empty() {
        let net = net_with_shortcut();
        let mut router = Router::new(&net);
        let route = router
            .route(IntersectionId(1), IntersectionId(1), |_| 1.0)
            .unwrap();
        assert!(route.is_empty());
    }

    #[test]
    fn workspace_reuse_is_correct() {
        let net = net_with_shortcut();
        let mut router = Router::new(&net);
        for _ in 0..3 {
            let r = router
                .route(IntersectionId(0), IntersectionId(2), |_| 1.0)
                .unwrap();
            assert_eq!(r.len(), 1);
            let r = router
                .route(IntersectionId(0), IntersectionId(1), |_| 1.0)
                .unwrap();
            assert_eq!(r, vec![SegmentId(0)]);
        }
    }

    #[test]
    fn respects_direction() {
        let net = net_with_shortcut();
        let mut router = Router::new(&net);
        // 2 -> 0 impossible: all segments point rightward.
        assert!(router
            .route(IntersectionId(2), IntersectionId(0), |_| 1.0)
            .is_err());
    }

    #[test]
    fn free_flow_time_formula() {
        let net = net_with_shortcut();
        let t = free_flow_time(&net, SegmentId(0));
        let s = net.segment(SegmentId(0));
        assert!((t - s.length_m / s.free_speed_mps).abs() < 1e-12);
    }
}
