//! Disruption scenarios: composable timelines of incidents replayable over
//! analytic congestion fields and recorded density histories.
//!
//! The partitioner's premise is that congestion structure shifts and the
//! partitions must track it — but smooth synthetic workloads never stress
//! that claim. A [`Scenario`] is a named, fully deterministic timeline of
//! [`DisruptionEvent`]s over normalized time `t in [0, 1]`:
//!
//! * [`Disruption::CapacityDrop`] — an incident (crash, lane closure)
//!   inside a disc: throughput falls, so density on the affected segments
//!   rises multiplicatively while the event is active;
//! * [`Disruption::Blockade`] — a closed region: density inside collapses
//!   toward zero (no traffic can enter) while a spillover ring around it
//!   absorbs the diverted vehicles;
//! * [`Disruption::DemandSurge`] — a network-wide demand multiplier (rush
//!   hour, stadium egress);
//! * [`Disruption::MovingHotspot`] — an additive Gaussian congestion peak
//!   whose centre travels along a line over the event window (a slow-moving
//!   incident, a parade, a storm cell).
//!
//! Events compose: each transforms the density vector in timeline order, so
//! a blockade during a rush-hour surge behaves as expected. Activation is
//! trapezoidal (linear ramp in/out inside the window) so replays exercise
//! gradual onset as well as the steady disrupted state. Everything is
//! parameterized by explicit geometry and factors — never an RNG — so fault
//! replays are exactly reproducible, in the spirit of `core::faults`.

use crate::density::DensityHistory;
use crate::field::CongestionField;
use crate::profile::TemporalProfile;
use roadpart_net::{RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};

/// One injectable traffic disruption, positioned in network coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Disruption {
    /// Capacity loss inside a disc: densities of segments whose midpoint
    /// lies within `radius_m` of `(x, y)` are multiplied by
    /// `1 + queue_gain * severity * activation` (queues grow where
    /// throughput fell).
    CapacityDrop {
        /// Disc centre easting, metres.
        x: f64,
        /// Disc centre northing, metres.
        y: f64,
        /// Disc radius, metres.
        radius_m: f64,
        /// Fraction of capacity lost, in `[0, 1]`.
        severity: f64,
    },
    /// Closed region: densities inside `radius_m` scale toward zero with
    /// activation; the ring out to `2 * radius_m` picks up the diverted
    /// traffic, scaled by `spill` and decaying linearly with distance.
    Blockade {
        /// Blockade centre easting, metres.
        x: f64,
        /// Blockade centre northing, metres.
        y: f64,
        /// Blocked-region radius, metres.
        radius_m: f64,
        /// Peak relative density increase on the spillover ring.
        spill: f64,
    },
    /// Network-wide demand multiplier ramping to `factor` at full
    /// activation (rush hour, event egress).
    DemandSurge {
        /// Density multiplier at full activation (`> 1` is a surge).
        factor: f64,
    },
    /// An additive Gaussian congestion peak moving from `(x0, y0)` to
    /// `(x1, y1)` across the event window.
    MovingHotspot {
        /// Path start easting, metres.
        x0: f64,
        /// Path start northing, metres.
        y0: f64,
        /// Path end easting, metres.
        x1: f64,
        /// Path end northing, metres.
        y1: f64,
        /// Added density at the moving centre, vehicles per metre.
        amplitude: f64,
        /// Gaussian radius, metres.
        sigma_m: f64,
    },
}

/// A [`Disruption`] scheduled on the scenario timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisruptionEvent {
    /// Window start, normalized time in `[0, 1]`.
    pub start: f64,
    /// Window end, normalized time in `[0, 1]` (`end > start`).
    pub end: f64,
    /// Fraction of the window spent ramping in (and again ramping out);
    /// `0` is a step function, `0.5` a pure triangle.
    pub ramp: f64,
    /// The disruption applied while the window is active.
    pub disruption: Disruption,
}

impl DisruptionEvent {
    /// An event active over `[start, end]` with a 20% ramp.
    pub fn new(start: f64, end: f64, disruption: Disruption) -> Self {
        Self {
            start,
            end,
            ramp: 0.2,
            disruption,
        }
    }

    /// Trapezoidal activation in `[0, 1]`: zero outside the window, linear
    /// ramps of width `ramp * (end - start)` at both edges, one in between.
    pub fn activation(&self, t: f64) -> f64 {
        let span = self.end - self.start;
        if span <= 0.0 || t < self.start || t > self.end {
            return 0.0;
        }
        let ramp = (self.ramp.clamp(0.0, 0.5)) * span;
        if ramp <= 0.0 {
            return 1.0;
        }
        let up = (t - self.start) / ramp;
        let down = (self.end - t) / ramp;
        up.min(down).clamp(0.0, 1.0)
    }

    /// Fraction of the window elapsed at `t`, clamped to `[0, 1]` — drives
    /// the moving-hotspot path.
    pub fn progress(&self, t: f64) -> f64 {
        let span = self.end - self.start;
        if span <= 0.0 {
            return 0.0;
        }
        ((t - self.start) / span).clamp(0.0, 1.0)
    }
}

/// A named, composable disruption timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name, used by benches and the CLI.
    pub name: String,
    /// Events applied in order at every timestep.
    pub events: Vec<DisruptionEvent>,
}

impl Scenario {
    /// An empty scenario (identity transform).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Builder-style event append.
    #[must_use]
    pub fn with_event(mut self, event: DisruptionEvent) -> Self {
        self.events.push(event);
        self
    }

    /// True between the earliest event start and the latest event end.
    pub fn is_active(&self, t: f64) -> bool {
        self.events.iter().any(|e| e.activation(t) > 0.0)
    }

    /// Transforms one density snapshot in place for time `t`. Events apply
    /// in timeline order; output densities stay finite and non-negative
    /// whenever the input was.
    pub fn apply(&self, net: &RoadNetwork, t: f64, densities: &mut [f64]) {
        for event in &self.events {
            let act = event.activation(t);
            if act <= 0.0 {
                continue;
            }
            match event.disruption {
                Disruption::CapacityDrop {
                    x,
                    y,
                    radius_m,
                    severity,
                } => {
                    let gain = QUEUE_GAIN * severity.clamp(0.0, 1.0) * act;
                    for_each_in_disc(net, densities, x, y, radius_m, |d, _| d * (1.0 + gain));
                }
                Disruption::Blockade {
                    x,
                    y,
                    radius_m,
                    spill,
                } => {
                    let keep = 1.0 - act;
                    for (i, d) in densities.iter_mut().enumerate() {
                        let (mx, my) = net.segment_midpoint(SegmentId::from_index(i));
                        let dist = ((mx - x).powi(2) + (my - y).powi(2)).sqrt();
                        if dist <= radius_m {
                            *d *= keep;
                        } else if dist <= 2.0 * radius_m {
                            // Linear decay from the blockade edge outward.
                            let w = 1.0 - (dist - radius_m) / radius_m;
                            *d *= 1.0 + spill * act * w;
                        }
                    }
                }
                Disruption::DemandSurge { factor } => {
                    let scale = 1.0 + (factor - 1.0) * act;
                    for d in densities.iter_mut() {
                        *d = (*d * scale).max(0.0);
                    }
                }
                Disruption::MovingHotspot {
                    x0,
                    y0,
                    x1,
                    y1,
                    amplitude,
                    sigma_m,
                } => {
                    let p = event.progress(t);
                    let (cx, cy) = (x0 + (x1 - x0) * p, y0 + (y1 - y0) * p);
                    let inv = 1.0 / (2.0 * sigma_m * sigma_m).max(f64::MIN_POSITIVE);
                    for (i, d) in densities.iter_mut().enumerate() {
                        let (mx, my) = net.segment_midpoint(SegmentId::from_index(i));
                        let d2 = (mx - cx).powi(2) + (my - cy).powi(2);
                        *d += amplitude * act * (-d2 * inv).exp();
                    }
                }
            }
        }
    }

    /// Densities of an analytic field at time `t` with the scenario
    /// applied — the per-step generator the replay helpers use.
    pub fn disrupted_densities(
        &self,
        net: &RoadNetwork,
        field: &CongestionField,
        t: f64,
        profile: &TemporalProfile,
    ) -> Vec<f64> {
        let mut d = field.densities(net, t, profile);
        self.apply(net, t, &mut d);
        d
    }

    /// Replays the scenario over an analytic field: `steps` snapshots at
    /// evenly spaced normalized times.
    pub fn replay_field(
        &self,
        net: &RoadNetwork,
        field: &CongestionField,
        profile: &TemporalProfile,
        steps: usize,
    ) -> DensityHistory {
        let steps = steps.max(1);
        let mut history = DensityHistory::new(net.segment_count());
        for s in 0..steps {
            let t = if steps == 1 {
                0.0
            } else {
                s as f64 / (steps - 1) as f64
            };
            history.push(self.disrupted_densities(net, field, t, profile));
        }
        history
    }

    /// Overlays the scenario on a recorded history (e.g. a microsim trace):
    /// snapshot `s` is transformed at normalized time `s / (len - 1)`.
    pub fn apply_history(&self, net: &RoadNetwork, history: &DensityHistory) -> DensityHistory {
        let len = history.len();
        let mut out = DensityHistory::new(history.n_segments());
        for s in 0..len {
            let t = if len <= 1 {
                0.0
            } else {
                s as f64 / (len - 1) as f64
            };
            let mut d = history.at(s).to_vec();
            self.apply(net, t, &mut d);
            out.push(d);
        }
        out
    }

    /// The canonical scenario set used by the drift bench and the fault
    /// replay suite, sized to the network's bounding box. Each scenario has
    /// a calm lead-in (`t < 0.33`), an active window, and a tail so
    /// time-to-detect and epochs-to-recover are both measurable.
    pub fn standard_suite(net: &RoadNetwork) -> Vec<Scenario> {
        let (min_x, min_y, w, h) = bounding_box(net);
        let span = w.min(h);
        let (cx, cy) = (min_x + 0.5 * w, min_y + 0.5 * h);
        vec![
            Scenario::new("capacity-drop").with_event(DisruptionEvent::new(
                0.33,
                0.70,
                Disruption::CapacityDrop {
                    x: min_x + 0.3 * w,
                    y: min_y + 0.3 * h,
                    radius_m: 0.22 * span,
                    severity: 0.8,
                },
            )),
            Scenario::new("blockade").with_event(DisruptionEvent::new(
                0.33,
                0.70,
                Disruption::Blockade {
                    x: cx,
                    y: cy,
                    radius_m: 0.18 * span,
                    spill: 1.5,
                },
            )),
            Scenario::new("rush-hour").with_event(DisruptionEvent::new(
                0.33,
                0.75,
                Disruption::DemandSurge { factor: 2.5 },
            )),
            Scenario::new("moving-hotspot").with_event(DisruptionEvent::new(
                0.33,
                0.80,
                Disruption::MovingHotspot {
                    x0: min_x + 0.15 * w,
                    y0: min_y + 0.15 * h,
                    x1: min_x + 0.85 * w,
                    y1: min_y + 0.85 * h,
                    amplitude: 0.25,
                    sigma_m: 0.15 * span,
                },
            )),
        ]
    }
}

/// Multiplicative queue growth per unit severity at full activation for
/// [`Disruption::CapacityDrop`] — a Greenshields-flavoured constant: losing
/// most of a road's capacity roughly quadruples the local density before
/// traffic reroutes.
const QUEUE_GAIN: f64 = 3.0;

/// Applies `f(density, distance)` to every segment whose midpoint lies
/// within `radius_m` of `(x, y)`.
fn for_each_in_disc(
    net: &RoadNetwork,
    densities: &mut [f64],
    x: f64,
    y: f64,
    radius_m: f64,
    f: impl Fn(f64, f64) -> f64,
) {
    let r2 = radius_m * radius_m;
    for (i, d) in densities.iter_mut().enumerate() {
        let (mx, my) = net.segment_midpoint(SegmentId::from_index(i));
        let d2 = (mx - x).powi(2) + (my - y).powi(2);
        if d2 <= r2 {
            *d = f(*d, d2.sqrt());
        }
    }
}

/// `(min_x, min_y, width, height)` of the intersection cloud, with a 1 m
/// floor on both extents.
fn bounding_box(net: &RoadNetwork) -> (f64, f64, f64, f64) {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in net.intersections() {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    if !min_x.is_finite() {
        return (0.0, 0.0, 1.0, 1.0);
    }
    (
        min_x,
        min_y,
        (max_x - min_x).max(1.0),
        (max_y - min_y).max(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadpart_net::UrbanConfig;

    fn net() -> RoadNetwork {
        UrbanConfig::d1().scaled(0.4).generate(11).unwrap()
    }

    fn base(net: &RoadNetwork) -> Vec<f64> {
        let field = CongestionField::urban_default(net, 11);
        field.densities(net, 0.5, &TemporalProfile::Flat)
    }

    #[test]
    fn activation_is_trapezoidal() {
        let e = DisruptionEvent {
            start: 0.2,
            end: 0.8,
            ramp: 0.25,
            disruption: Disruption::DemandSurge { factor: 2.0 },
        };
        assert_eq!(e.activation(0.0), 0.0);
        assert_eq!(e.activation(1.0), 0.0);
        assert!((e.activation(0.5) - 1.0).abs() < 1e-12, "plateau");
        let half_ramp = e.activation(0.275);
        assert!(
            half_ramp > 0.0 && half_ramp < 1.0,
            "ramping in: {half_ramp}"
        );
        assert!((e.activation(0.275) - e.activation(0.725)).abs() < 1e-12);
        // Step function with ramp 0.
        let step = DisruptionEvent {
            ramp: 0.0,
            ..e.clone()
        };
        assert_eq!(step.activation(0.2), 1.0);
        assert!((e.progress(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inactive_scenario_is_identity() {
        let net = net();
        let before = base(&net);
        let mut after = before.clone();
        let s = Scenario::standard_suite(&net).remove(1);
        assert!(!s.is_active(0.1));
        s.apply(&net, 0.1, &mut after);
        assert_eq!(before, after);
    }

    #[test]
    fn blockade_empties_the_core_and_loads_the_ring() {
        let net = net();
        let before = base(&net);
        let mut after = before.clone();
        let (min_x, min_y, w, h) = bounding_box(&net);
        let (cx, cy) = (min_x + 0.5 * w, min_y + 0.5 * h);
        let radius = 0.2 * w.min(h);
        let s = Scenario::new("b").with_event(DisruptionEvent {
            start: 0.0,
            end: 1.0,
            ramp: 0.0,
            disruption: Disruption::Blockade {
                x: cx,
                y: cy,
                radius_m: radius,
                spill: 1.0,
            },
        });
        s.apply(&net, 0.5, &mut after);
        let mut core_seen = false;
        let mut ring_seen = false;
        for i in 0..net.segment_count() {
            let (mx, my) = net.segment_midpoint(SegmentId::from_index(i));
            let dist = ((mx - cx).powi(2) + (my - cy).powi(2)).sqrt();
            if dist <= radius {
                assert!(after[i].abs() < 1e-12, "core segment {i} not emptied");
                core_seen = true;
            } else if dist <= 1.5 * radius && before[i] > 0.0 {
                assert!(after[i] > before[i], "ring segment {i} not loaded");
                ring_seen = true;
            }
        }
        assert!(core_seen && ring_seen, "network too small for the geometry");
    }

    #[test]
    fn surge_scales_and_capacity_drop_is_local() {
        let net = net();
        let before = base(&net);
        let mut surged = before.clone();
        Scenario::new("s")
            .with_event(DisruptionEvent {
                start: 0.0,
                end: 1.0,
                ramp: 0.0,
                disruption: Disruption::DemandSurge { factor: 2.0 },
            })
            .apply(&net, 0.5, &mut surged);
        for (b, a) in before.iter().zip(&surged) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }

        let mut dropped = before.clone();
        let (min_x, min_y, w, h) = bounding_box(&net);
        Scenario::new("c")
            .with_event(DisruptionEvent {
                start: 0.0,
                end: 1.0,
                ramp: 0.0,
                disruption: Disruption::CapacityDrop {
                    x: min_x + 0.25 * w,
                    y: min_y + 0.25 * h,
                    radius_m: 0.2 * w.min(h),
                    severity: 1.0,
                },
            })
            .apply(&net, 0.5, &mut dropped);
        let changed = dropped
            .iter()
            .zip(&before)
            .filter(|(a, b)| (*a - *b).abs() > 1e-15)
            .count();
        assert!(changed > 0, "no segment affected");
        assert!(changed < net.segment_count(), "drop must stay local");
        for (a, b) in dropped.iter().zip(&before) {
            assert!(*a >= *b - 1e-15, "capacity drop only raises density");
        }
    }

    #[test]
    fn moving_hotspot_travels() {
        let net = net();
        let (min_x, min_y, w, h) = bounding_box(&net);
        let s = Scenario::new("m").with_event(DisruptionEvent {
            start: 0.0,
            end: 1.0,
            ramp: 0.0,
            disruption: Disruption::MovingHotspot {
                x0: min_x,
                y0: min_y + 0.5 * h,
                x1: min_x + w,
                y1: min_y + 0.5 * h,
                amplitude: 1.0,
                sigma_m: 0.1 * w,
            },
        });
        let zeros = vec![0.0; net.segment_count()];
        let centroid = |d: &[f64]| {
            let mass: f64 = d.iter().sum();
            let mut x = 0.0;
            for (i, v) in d.iter().enumerate() {
                x += v * net.segment_midpoint(SegmentId::from_index(i)).0;
            }
            x / mass.max(1e-12)
        };
        let mut early = zeros.clone();
        s.apply(&net, 0.1, &mut early);
        let mut late = zeros;
        s.apply(&net, 0.9, &mut late);
        assert!(
            centroid(&late) > centroid(&early),
            "hotspot mass must move with progress"
        );
    }

    #[test]
    fn replays_are_deterministic_finite_and_composable() {
        let net = net();
        let field = CongestionField::urban_default(&net, 11);
        let profile = TemporalProfile::morning();
        // Two events at once: surge + blockade compose.
        let mut s = Scenario::standard_suite(&net).remove(2);
        let (min_x, min_y, w, h) = bounding_box(&net);
        s.events.push(DisruptionEvent::new(
            0.4,
            0.6,
            Disruption::Blockade {
                x: min_x + 0.5 * w,
                y: min_y + 0.5 * h,
                radius_m: 0.15 * w.min(h),
                spill: 1.0,
            },
        ));
        let a = s.replay_field(&net, &field, &profile, 9);
        let b = s.replay_field(&net, &field, &profile, 9);
        assert_eq!(a.len(), 9);
        for t in 0..a.len() {
            assert_eq!(a.at(t), b.at(t), "replay must be deterministic");
            assert!(a.at(t).iter().all(|d| d.is_finite() && *d >= 0.0));
        }
        // Overlaying on a recorded history matches the per-step transform.
        let clean = Scenario::new("none").replay_field(&net, &field, &profile, 9);
        let overlaid = s.apply_history(&net, &clean);
        for t in 0..overlaid.len() {
            assert_eq!(overlaid.at(t), a.at(t));
        }
    }

    #[test]
    fn standard_suite_covers_all_disruption_kinds() {
        let net = net();
        let suite = Scenario::standard_suite(&net);
        assert_eq!(suite.len(), 4);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"blockade") && names.contains(&"rush-hour"));
        for s in &suite {
            assert!(!s.is_active(0.1), "{}: calm lead-in required", s.name);
            assert!(s.is_active(0.5), "{}: active mid-run", s.name);
            let json = serde_json::to_string(s).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, s);
        }
    }
}
