//! Analytic congestion fields.
//!
//! A deterministic, simulation-free way to paint spatially correlated
//! congestion onto a network: a base load plus Gaussian hotspots ("roads
//! inside the city centre or any area having popular venues ... usually
//! remain more congested", §1), modulated by a temporal profile. Used by
//! fast tests and by workloads that don't need full microsimulation.

use crate::profile::TemporalProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use roadpart_net::{RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};

/// A congestion attractor: CBD, stadium, hospital, station...
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Centre easting, metres.
    pub x: f64,
    /// Centre northing, metres.
    pub y: f64,
    /// Added density at the centre, vehicles per metre.
    pub amplitude: f64,
    /// Gaussian radius, metres.
    pub sigma_m: f64,
}

impl Hotspot {
    /// Density contribution at `(x, y)`.
    pub fn contribution(&self, x: f64, y: f64) -> f64 {
        let d2 = (x - self.x).powi(2) + (y - self.y).powi(2);
        self.amplitude * (-d2 / (2.0 * self.sigma_m * self.sigma_m)).exp()
    }
}

/// A static spatial congestion field with per-segment multiplicative noise.
#[derive(Debug, Clone)]
pub struct CongestionField {
    hotspots: Vec<Hotspot>,
    base_density: f64,
    /// Fixed per-segment noise multipliers in `[1-noise, 1+noise]`.
    noise: Vec<f64>,
}

impl CongestionField {
    /// Creates a field for a network. `noise_frac` is the relative noise
    /// amplitude (e.g. `0.1` for ±10%); noise is frozen per segment so the
    /// field is deterministic in time.
    pub fn new(
        net: &RoadNetwork,
        hotspots: Vec<Hotspot>,
        base_density: f64,
        noise_frac: f64,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let nf = noise_frac.clamp(0.0, 0.95);
        let noise = (0..net.segment_count())
            .map(|_| 1.0 + rng.gen_range(-nf..=nf))
            .collect();
        Self {
            hotspots,
            base_density,
            noise,
        }
    }

    /// A "CBD plus satellite centres" field sized to the network's bounding
    /// box — the default urban congestion structure.
    pub fn urban_default(net: &RoadNetwork, seed: u64) -> Self {
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in net.intersections() {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let (w, h) = ((max_x - min_x).max(1.0), (max_y - min_y).max(1.0));
        let span = w.min(h);
        let hotspots = vec![
            // CBD at centre: a broad congested district, not a point.
            Hotspot {
                x: min_x + 0.5 * w,
                y: min_y + 0.5 * h,
                amplitude: 0.08,
                sigma_m: 0.25 * span,
            },
            // Satellite centres (station district, hospital precinct,
            // stadium, shopping strip) with their own congestion regimes —
            // distinct districts give the partitioner several genuine
            // congestion regions to find.
            Hotspot {
                x: min_x + 0.18 * w,
                y: min_y + 0.78 * h,
                amplitude: 0.05,
                sigma_m: 0.16 * span,
            },
            Hotspot {
                x: min_x + 0.82 * w,
                y: min_y + 0.22 * h,
                amplitude: 0.06,
                sigma_m: 0.18 * span,
            },
            Hotspot {
                x: min_x + 0.8 * w,
                y: min_y + 0.85 * h,
                amplitude: 0.04,
                sigma_m: 0.13 * span,
            },
            Hotspot {
                x: min_x + 0.15 * w,
                y: min_y + 0.2 * h,
                amplitude: 0.035,
                sigma_m: 0.14 * span,
            },
        ];
        Self::new(net, hotspots, 0.01, 0.35, seed)
    }

    /// Density of one segment at normalized time `t` under `profile`.
    pub fn density_at(
        &self,
        net: &RoadNetwork,
        seg: SegmentId,
        t: f64,
        profile: &TemporalProfile,
    ) -> f64 {
        let (x, y) = net.segment_midpoint(seg);
        let spatial: f64 = self.base_density
            + self
                .hotspots
                .iter()
                .map(|h| h.contribution(x, y))
                .sum::<f64>();
        // Street hierarchy: arterials (higher free-flow speeds) attract a
        // disproportionate share of circulating traffic, giving the density
        // distribution its multi-modal structure (distinct levels for local
        // streets vs collectors vs arterials in every district).
        let class = (net.segment(seg).free_speed_mps / 13.9).powf(1.5);
        (profile.factor(t) * spatial * class * self.noise[seg.index()]).max(0.0)
    }

    /// Densities for all segments at normalized time `t`.
    pub fn densities(&self, net: &RoadNetwork, t: f64, profile: &TemporalProfile) -> Vec<f64> {
        (0..net.segment_count())
            .map(|i| self.density_at(net, SegmentId::from_index(i), t, profile))
            .collect()
    }

    /// The configured hotspots.
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadpart_net::UrbanConfig;

    fn net() -> RoadNetwork {
        UrbanConfig::d1().scaled(0.5).generate(3).unwrap()
    }

    #[test]
    fn hotspot_decays_with_distance() {
        let h = Hotspot {
            x: 0.0,
            y: 0.0,
            amplitude: 1.0,
            sigma_m: 100.0,
        };
        assert!((h.contribution(0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!(h.contribution(100.0, 0.0) < 1.0);
        assert!(h.contribution(1000.0, 0.0) < 1e-8);
    }

    #[test]
    fn field_is_deterministic_and_nonnegative() {
        let net = net();
        let f = CongestionField::urban_default(&net, 1);
        let p = TemporalProfile::morning();
        let a = f.densities(&net, 0.3, &p);
        let b = f.densities(&net, 0.3, &p);
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| d >= 0.0));
        assert_eq!(a.len(), net.segment_count());
    }

    #[test]
    fn peak_time_denser_than_offpeak() {
        let net = net();
        let f = CongestionField::urban_default(&net, 1);
        let p = TemporalProfile::morning();
        let peak: f64 = f.densities(&net, 0.3, &p).iter().sum();
        let off: f64 = f.densities(&net, 0.95, &p).iter().sum();
        assert!(peak > off, "peak {peak} vs off-peak {off}");
    }

    #[test]
    fn cbd_segments_denser_than_periphery() {
        let net = net();
        let f = CongestionField::urban_default(&net, 1);
        let p = TemporalProfile::Flat;
        let d = f.densities(&net, 0.5, &p);
        // Compare mean density of the innermost vs outermost quartile of
        // segments by distance to the CBD hotspot.
        let cbd = f.hotspots()[0];
        let mut by_dist: Vec<(f64, f64)> = (0..net.segment_count())
            .map(|i| {
                let (x, y) = net.segment_midpoint(roadpart_net::SegmentId::from_index(i));
                (((x - cbd.x).powi(2) + (y - cbd.y).powi(2)).sqrt(), d[i])
            })
            .collect();
        by_dist.sort_by(|a, b| a.0.total_cmp(&b.0));
        let q = by_dist.len() / 4;
        let inner: f64 = by_dist[..q].iter().map(|p| p.1).sum::<f64>() / q as f64;
        let outer: f64 = by_dist[by_dist.len() - q..]
            .iter()
            .map(|p| p.1)
            .sum::<f64>()
            / q as f64;
        assert!(inner > outer, "inner {inner} vs outer {outer}");
    }
}
