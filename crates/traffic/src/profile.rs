//! Temporal demand profiles.
//!
//! Traffic demand varies over the simulated window ("roads usually remain
//! busier and more congested in peak hours than off-peak hours", §1). A
//! profile maps normalized time `t in [0, 1]` to a demand multiplier.

use serde::{Deserialize, Serialize};

/// Shape of the demand curve over the simulation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TemporalProfile {
    /// Constant demand.
    Flat,
    /// A single peak centred at `centre` with width `width` (both in
    /// normalized time), rising from `base` to `1.0` — e.g. a morning rush.
    SinglePeak {
        /// Peak centre in normalized time.
        centre: f64,
        /// Gaussian width of the peak.
        width: f64,
        /// Off-peak floor in `[0, 1]`.
        base: f64,
    },
    /// Morning and evening peaks (commute pattern).
    DoublePeak {
        /// Off-peak floor in `[0, 1]`.
        base: f64,
    },
}

impl TemporalProfile {
    /// Typical morning-rush profile peaking 30% into the window.
    pub fn morning() -> Self {
        TemporalProfile::SinglePeak {
            centre: 0.3,
            width: 0.15,
            base: 0.25,
        }
    }

    /// Demand multiplier at normalized time `t` (clamped to `[0, 1]`);
    /// always in `(0, 1]`.
    pub fn factor(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match *self {
            TemporalProfile::Flat => 1.0,
            TemporalProfile::SinglePeak {
                centre,
                width,
                base,
            } => {
                let base = base.clamp(0.0, 1.0);
                let w = width.max(1e-6);
                let bump = (-((t - centre) / w).powi(2) / 2.0).exp();
                (base + (1.0 - base) * bump).max(1e-6)
            }
            TemporalProfile::DoublePeak { base } => {
                let base = base.clamp(0.0, 1.0);
                let w = 0.1f64;
                let am = (-((t - 0.25) / w).powi(2) / 2.0).exp();
                let pm = (-((t - 0.75) / w).powi(2) / 2.0).exp();
                (base + (1.0 - base) * am.max(pm)).max(1e-6)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one() {
        assert_eq!(TemporalProfile::Flat.factor(0.0), 1.0);
        assert_eq!(TemporalProfile::Flat.factor(0.7), 1.0);
    }

    #[test]
    fn single_peak_maximal_at_centre() {
        let p = TemporalProfile::morning();
        let at_peak = p.factor(0.3);
        assert!((at_peak - 1.0).abs() < 1e-9);
        assert!(p.factor(0.9) < at_peak);
        assert!(p.factor(0.0) < at_peak);
        assert!(p.factor(0.9) >= 0.25 - 1e-9); // floored at base
    }

    #[test]
    fn double_peak_has_two_maxima() {
        let p = TemporalProfile::DoublePeak { base: 0.2 };
        assert!((p.factor(0.25) - 1.0).abs() < 1e-6);
        assert!((p.factor(0.75) - 1.0).abs() < 1e-6);
        assert!(p.factor(0.5) < 0.9);
    }

    #[test]
    fn factor_clamps_time_and_stays_positive() {
        let p = TemporalProfile::morning();
        assert_eq!(p.factor(-5.0), p.factor(0.0));
        assert_eq!(p.factor(9.0), p.factor(1.0));
        for i in 0..=20 {
            assert!(p.factor(i as f64 / 20.0) > 0.0);
        }
    }
}
