//! # roadpart-traffic
//!
//! Traffic substrate for the `roadpart` partitioning stack: everything
//! needed to *produce* the per-segment traffic densities the partitioner
//! consumes, built from scratch as a stand-in for the paper's two data
//! sources (a 4-hour D1 microsimulation, and MNTG-generated random traffic
//! for M1–M3 — see DESIGN.md "Substitutions").
//!
//! * [`routing::Router`] — binary-heap Dijkstra over the directed network;
//! * [`trip`] — OD demand generation (uniform or hotspot-biased);
//! * [`microsim`] — timestep vehicle simulation with a Greenshields
//!   speed-density law, recording densities each step;
//! * [`mntg`] — the MNTG-style "populate N vehicles, record T timestamps"
//!   pipeline;
//! * [`field`] — analytic hotspot congestion fields for fast deterministic
//!   workloads;
//! * [`profile`] — temporal demand profiles (flat / single peak / commute);
//! * [`scenario`] — composable disruption timelines (capacity drops,
//!   blockades, surges, moving hotspots) replayable over fields and
//!   recorded histories for robustness testing.

pub mod density;
pub mod error;
pub mod field;
pub mod microsim;
pub mod mntg;
pub mod profile;
pub mod routing;
pub mod scenario;
pub mod trip;

pub use density::{DensityHistory, StepAnomalies};
pub use error::{Result, TrafficError};
pub use field::{CongestionField, Hotspot};
pub use microsim::{simulate, MicrosimConfig, MicrosimStats};
pub use mntg::{generate_traffic, MntgConfig};
pub use profile::TemporalProfile;
pub use routing::Router;
pub use scenario::{Disruption, DisruptionEvent, Scenario};
pub use trip::{generate_trips, OdBias, Trip};
