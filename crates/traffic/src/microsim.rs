//! Trip-based traffic microsimulation.
//!
//! The paper's D1 densities come from "a microsimulation performed for 4
//! hours at 120 time intervals of 2 minutes" (§6.1). This module provides
//! that substrate: vehicles follow shortest-path routes and advance each
//! timestep at a density-dependent speed (a Greenshields-style linear
//! speed-density law), and per-segment densities (vehicles/metre) are
//! recorded at every step.

use crate::density::DensityHistory;
use crate::error::{Result, TrafficError};
use crate::routing::Router;
use crate::trip::Trip;
use rand::{Rng, SeedableRng};
use roadpart_net::{RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};

/// Microsimulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicrosimConfig {
    /// Length of one timestep in seconds. Paper D1 uses 120 s.
    pub step_seconds: f64,
    /// Number of timesteps to simulate. Paper D1 uses 120.
    pub steps: usize,
    /// Jam density in vehicles/metre at which traffic stops.
    pub jam_density: f64,
    /// Speed floor as a fraction of free-flow speed (prevents gridlock
    /// deadlock in the discrete model).
    pub min_speed_frac: f64,
    /// Journey legs per vehicle: after completing a trip the vehicle picks
    /// a fresh random destination and continues, `legs` times in total.
    /// `1` is classic origin-destination; larger values reproduce MNTG's
    /// random-waypoint behaviour, where vehicles keep the network loaded
    /// throughout the recording window.
    pub legs: usize,
    /// Seed for re-destination draws (only used when `legs > 1`).
    pub reroute_seed: u64,
    /// Distance-decay scale for re-destination draws: `Some(beta)` accepts a
    /// uniform candidate with probability `exp(-d/beta)` (local roaming, the
    /// gravity-model counterpart), `None` draws uniformly.
    pub redispatch_beta_m: Option<f64>,
}

impl Default for MicrosimConfig {
    fn default() -> Self {
        Self {
            step_seconds: 120.0,
            steps: 120,
            jam_density: 0.15,
            min_speed_frac: 0.05,
            legs: 1,
            reroute_seed: 0,
            redispatch_beta_m: None,
        }
    }
}

/// Summary statistics of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MicrosimStats {
    /// Trips that departed (a route existed).
    pub departed: usize,
    /// Trips skipped because origin and destination were not connected.
    pub unroutable: usize,
    /// Trips that reached their destination within the window.
    pub completed: usize,
}

/// Internal per-vehicle state.
struct Vehicle {
    route: Vec<SegmentId>,
    leg: usize,
    offset_m: f64,
    /// Journey legs still to travel after the current route completes.
    legs_remaining: usize,
}

/// Runs the microsimulation and records per-segment densities at every step.
///
/// # Errors
/// Returns [`TrafficError::InvalidConfig`] for non-positive step length /
/// jam density; unroutable trips are skipped and counted, not fatal.
pub fn simulate(
    net: &RoadNetwork,
    trips: &[Trip],
    cfg: &MicrosimConfig,
) -> Result<(DensityHistory, MicrosimStats)> {
    // NaN-rejecting comparisons (see RoadNetwork::new).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(cfg.step_seconds > 0.0) {
        return Err(TrafficError::InvalidConfig(format!(
            "step_seconds must be positive, got {}",
            cfg.step_seconds
        )));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(cfg.jam_density > 0.0) {
        return Err(TrafficError::InvalidConfig(format!(
            "jam_density must be positive, got {}",
            cfg.jam_density
        )));
    }
    let min_frac = cfg.min_speed_frac.clamp(0.01, 1.0);

    let n_seg = net.segment_count();
    let mut history = DensityHistory::new(n_seg);
    let mut stats = MicrosimStats::default();

    // Trips sorted into departure buckets.
    let mut departures: Vec<Vec<&Trip>> = vec![Vec::new(); cfg.steps];
    for t in trips {
        if t.depart_step < cfg.steps {
            departures[t.depart_step].push(t);
        }
    }

    let mut router = Router::new(net);
    let mut counts: Vec<f64> = vec![0.0; n_seg];
    let mut speeds: Vec<f64> = vec![0.0; n_seg];
    // Vehicle-seconds spent on each segment within the current step; the
    // recorded density is this time-averaged occupancy (a 2-minute traffic
    // density *is* an interval average, not an instantaneous count).
    let mut occupancy: Vec<f64> = vec![0.0; n_seg];
    let mut active: Vec<Vehicle> = Vec::new();

    // Candidate destinations for journey legs beyond the first: the
    // largest strongly connected component, so re-dispatch never strands a
    // vehicle.
    let redispatch_pool: Vec<usize> = if cfg.legs > 1 {
        let mask = net.largest_scc_mask();
        (0..net.intersection_count()).filter(|&i| mask[i]).collect()
    } else {
        Vec::new()
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.reroute_seed);

    let seg_len = |s: SegmentId| net.segment(s).length_m;

    #[allow(clippy::needless_range_loop)] // `step` also names the timestep
    for step in 0..cfg.steps {
        // Departures: routes computed lazily at departure time with
        // congestion-aware costs (drivers avoid currently jammed segments,
        // which spreads load like real route choice does).
        for trip in departures[step].drain(..) {
            match router.route(trip.origin, trip.dest, |s| {
                congested_time(net, s, counts[s.index()], cfg.jam_density, min_frac)
            }) {
                Ok(route) if !route.is_empty() => {
                    counts[route[0].index()] += 1.0;
                    active.push(Vehicle {
                        route,
                        leg: 0,
                        offset_m: 0.0,
                        legs_remaining: cfg.legs.saturating_sub(1),
                    });
                    stats.departed += 1;
                }
                Ok(_) => stats.completed += 1, // origin == dest
                Err(TrafficError::NoRoute { .. }) => stats.unroutable += 1,
                Err(e) => return Err(e),
            }
        }

        // Freeze speeds from densities at the start of the step
        // (synchronous update; Greenshields v = v_f (1 - rho/rho_jam)).
        for (i, speed) in speeds.iter_mut().enumerate() {
            let seg = net.segment(SegmentId::from_index(i));
            let rho = counts[i] / seg.length_m;
            let frac = (1.0 - rho / cfg.jam_density).max(min_frac);
            *speed = seg.free_speed_mps * frac;
        }

        // Advance every active vehicle through the timestep.
        occupancy.iter_mut().for_each(|o| *o = 0.0);
        let mut v_idx = 0;
        while v_idx < active.len() {
            let mut remaining = cfg.step_seconds;
            let mut finished = false;
            {
                let v = &mut active[v_idx];
                while remaining > 0.0 {
                    let seg = v.route[v.leg];
                    let speed = speeds[seg.index()];
                    let dist_left = seg_len(seg) - v.offset_m;
                    let time_needed = dist_left / speed;
                    if time_needed <= remaining {
                        remaining -= time_needed;
                        occupancy[seg.index()] += time_needed;
                        counts[seg.index()] -= 1.0;
                        v.leg += 1;
                        if v.leg == v.route.len() {
                            finished = true;
                            break;
                        }
                        counts[v.route[v.leg].index()] += 1.0;
                        v.offset_m = 0.0;
                    } else {
                        v.offset_m += speed * remaining;
                        occupancy[seg.index()] += remaining;
                        remaining = 0.0;
                    }
                }
            }
            if finished {
                stats.completed += 1;
                // Random-waypoint re-dispatch: continue to a fresh
                // destination while journey legs remain.
                let redispatched = {
                    let v = &mut active[v_idx];
                    let last_seg = v.route.last().copied();
                    if let (Some(last_seg), true) = (
                        last_seg,
                        v.legs_remaining > 0 && !redispatch_pool.is_empty(),
                    ) {
                        let here = net.segment(last_seg).to;
                        let mut new_route = None;
                        for _ in 0..8 {
                            let dest = redispatch_pool[rng.gen_range(0..redispatch_pool.len())];
                            if dest == here.index() {
                                continue;
                            }
                            if let Some(beta) = cfg.redispatch_beta_m {
                                let a = net.intersection(here);
                                let b = net
                                    .intersection(roadpart_net::IntersectionId::from_index(dest));
                                let d = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
                                if rng.gen::<f64>() >= (-d / beta.max(1.0)).exp() {
                                    continue;
                                }
                            }
                            if let Ok(route) = router.route(
                                here,
                                roadpart_net::IntersectionId::from_index(dest),
                                |s| {
                                    congested_time(
                                        net,
                                        s,
                                        counts[s.index()],
                                        cfg.jam_density,
                                        min_frac,
                                    )
                                },
                            ) {
                                if !route.is_empty() {
                                    new_route = Some(route);
                                    break;
                                }
                            }
                        }
                        match new_route {
                            Some(route) => {
                                counts[route[0].index()] += 1.0;
                                v.route = route;
                                v.leg = 0;
                                v.offset_m = 0.0;
                                v.legs_remaining -= 1;
                                true
                            }
                            None => false,
                        }
                    } else {
                        false
                    }
                };
                if redispatched {
                    v_idx += 1;
                } else {
                    active.swap_remove(v_idx);
                }
            } else {
                v_idx += 1;
            }
        }

        // Record the density snapshot: time-averaged occupancy over the
        // step, in vehicles per metre.
        let snapshot: Vec<f64> = (0..n_seg)
            .map(|i| {
                occupancy[i] / (cfg.step_seconds * net.segment(SegmentId::from_index(i)).length_m)
            })
            .collect();
        history.push(snapshot);
    }

    Ok((history, stats))
}

/// Travel time of a segment under its current vehicle count using the same
/// Greenshields speed-density law the movement model applies.
#[inline]
fn congested_time(
    net: &RoadNetwork,
    seg: SegmentId,
    count: f64,
    jam_density: f64,
    min_frac: f64,
) -> f64 {
    let s = net.segment(seg);
    let rho = count / s.length_m;
    let frac = (1.0 - rho / jam_density).max(min_frac);
    s.length_m / (s.free_speed_mps * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TemporalProfile;
    use crate::trip::{generate_trips, OdBias};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use roadpart_net::{IntersectionId, RoadNetworkBuilder, UrbanConfig};

    fn line_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let p: Vec<_> = (0..4)
            .map(|i| b.intersection(i as f64 * 100.0, 0.0))
            .collect();
        for w in p.windows(2) {
            b.two_way_road(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_vehicle_traverses_and_completes() {
        let net = line_net();
        let trips = [Trip {
            origin: IntersectionId(0),
            dest: IntersectionId(3),
            depart_step: 0,
        }];
        let cfg = MicrosimConfig {
            step_seconds: 10.0,
            steps: 10,
            ..MicrosimConfig::default()
        };
        let (hist, stats) = simulate(&net, &trips, &cfg).unwrap();
        assert_eq!(stats.departed, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.unroutable, 0);
        assert_eq!(hist.len(), 10);
        // Vehicle occupies some segment at step 0.
        assert!(hist.at(0).iter().sum::<f64>() > 0.0);
        // After completion the network is empty.
        assert_eq!(hist.last().unwrap().iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn conservation_of_vehicles() {
        // Total vehicles on network == departed - completed at every step.
        let net = UrbanConfig::d1().scaled(0.4).generate(11).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trips = generate_trips(
            &net,
            300,
            40,
            &TemporalProfile::Flat,
            &OdBias::Uniform,
            &mut rng,
        );
        let cfg = MicrosimConfig {
            step_seconds: 30.0,
            steps: 40,
            ..MicrosimConfig::default()
        };
        let (hist, stats) = simulate(&net, &trips, &cfg).unwrap();
        assert_eq!(hist.len(), 40);
        assert!(stats.departed > 0);
        // Densities are time-averaged occupancy: the implied mean vehicle
        // count can never exceed the departed fleet, and never goes
        // negative.
        for t in 0..hist.len() {
            let total: f64 = hist
                .at(t)
                .iter()
                .enumerate()
                .map(|(i, &rho)| rho * net.segment(roadpart_net::SegmentId::from_index(i)).length_m)
                .sum();
            assert!(total >= -1e-9);
            assert!(total <= stats.departed as f64 + 1e-6);
        }
    }

    #[test]
    fn congestion_slows_traffic() {
        // Flood one road: completion should take longer than free flow.
        let net = line_net();
        let mut trips = Vec::new();
        for _ in 0..200 {
            trips.push(Trip {
                origin: IntersectionId(0),
                dest: IntersectionId(3),
                depart_step: 0,
            });
        }
        let cfg = MicrosimConfig {
            step_seconds: 5.0,
            steps: 20,
            ..MicrosimConfig::default()
        };
        let (hist, stats) = simulate(&net, &trips, &cfg).unwrap();
        // 300 m at 13.9 m/s free flow = ~22 s; 200 vehicles on a 100 m
        // segment is far past jam density, so most must still be en route.
        assert_eq!(stats.departed, 200);
        assert!(
            stats.completed < 150,
            "congestion should delay completions, got {}",
            stats.completed
        );
        let peak = hist.peak_step().unwrap();
        assert!(hist.mean_at(peak) > 0.1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let net = line_net();
        let bad_step = MicrosimConfig {
            step_seconds: 0.0,
            ..MicrosimConfig::default()
        };
        assert!(simulate(&net, &[], &bad_step).is_err());
        let bad_jam = MicrosimConfig {
            jam_density: -1.0,
            ..MicrosimConfig::default()
        };
        assert!(simulate(&net, &[], &bad_jam).is_err());
    }

    #[test]
    fn unroutable_trips_are_counted_not_fatal() {
        let mut b = RoadNetworkBuilder::new();
        let p0 = b.intersection(0.0, 0.0);
        let p1 = b.intersection(100.0, 0.0);
        b.one_way_road(p1, p0);
        let net = b.build().unwrap();
        let trips = [Trip {
            origin: p0,
            dest: p1,
            depart_step: 0,
        }];
        let cfg = MicrosimConfig {
            steps: 2,
            step_seconds: 10.0,
            ..MicrosimConfig::default()
        };
        let (_, stats) = simulate(&net, &trips, &cfg).unwrap();
        assert_eq!(stats.unroutable, 1);
        assert_eq!(stats.departed, 0);
    }
}
