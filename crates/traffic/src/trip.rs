//! Trip demand generation.
//!
//! A trip is an origin-destination pair with a departure timestep. Demand
//! can be drawn uniformly over intersections (the MNTG "random traffic"
//! model) or biased toward hotspots, reproducing the spatial-importance
//! structure the paper motivates (airports, stations, hospitals...).

use crate::field::Hotspot;
use crate::profile::TemporalProfile;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use roadpart_net::{IntersectionId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// One vehicle's travel demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trip {
    /// Origin intersection.
    pub origin: IntersectionId,
    /// Destination intersection.
    pub dest: IntersectionId,
    /// Departure timestep index.
    pub depart_step: usize,
}

/// Spatial structure of the origin/destination draw.
#[derive(Debug, Clone)]
pub enum OdBias {
    /// Uniform over intersections (MNTG-style random traffic).
    Uniform,
    /// Destinations weighted toward hotspots; origins uniform — the
    /// morning-commute structure (everyone heads to the centres).
    ToHotspots(Vec<Hotspot>),
    /// Gravity model: destinations weighted by hotspot attraction *and*
    /// exponential distance decay `exp(-d/beta)` from the origin. Most urban
    /// trips are local, which keeps each district's traffic inside the
    /// district and produces the regional congestion-level structure the
    /// partitioner is designed to find.
    Gravity {
        /// Congestion attractors weighting the destination draw.
        hotspots: Vec<Hotspot>,
        /// Distance-decay scale in metres.
        beta_m: f64,
    },
}

/// Generates `n` trips over a window of `steps` timesteps: departures are
/// distributed according to `profile` over the first 70% of the window so
/// late vehicles still finish, OD pairs according to `bias`.
///
/// Origins and destinations are sampled inside the network's largest
/// strongly connected component, so every generated trip is routable.
pub fn generate_trips(
    net: &RoadNetwork,
    n: usize,
    steps: usize,
    profile: &TemporalProfile,
    bias: &OdBias,
    rng: &mut ChaCha8Rng,
) -> Vec<Trip> {
    let mask = net.largest_scc_mask();
    let candidates: Vec<usize> = (0..net.intersection_count()).filter(|&i| mask[i]).collect();
    let n_int = candidates.len();
    if n_int < 2 || steps == 0 {
        return Vec::new();
    }
    // Cumulative departure distribution across the departure window.
    let window = ((steps as f64) * 0.7).ceil().max(1.0) as usize;
    let mut cum_time: Vec<f64> = Vec::with_capacity(window);
    let mut acc = 0.0;
    for s in 0..window {
        acc += profile.factor(s as f64 / steps as f64);
        cum_time.push(acc);
    }
    // Cumulative destination weights over the candidate set (hotspot
    // attraction; distance decay is applied by rejection when requested).
    let hotspot_cum = |hotspots: &[Hotspot]| -> Vec<f64> {
        let mut acc = 0.0;
        candidates
            .iter()
            .map(|&i| {
                let p = &net.intersections()[i];
                let w: f64 = 0.1
                    + hotspots
                        .iter()
                        .map(|h| h.contribution(p.x, p.y))
                        .sum::<f64>();
                acc += w;
                acc
            })
            .collect()
    };
    let cum_dest: Option<Vec<f64>> = match bias {
        OdBias::Uniform => None,
        OdBias::ToHotspots(hotspots) | OdBias::Gravity { hotspots, .. } => {
            Some(hotspot_cum(hotspots))
        }
    };

    let sample_cum = |cum: &[f64], rng: &mut ChaCha8Rng| -> usize {
        match cum.last() {
            Some(&total) if total > 0.0 => {
                let u = rng.gen_range(0.0..total);
                cum.partition_point(|&c| c <= u).min(cum.len() - 1)
            }
            // Degenerate weights (empty or all-zero): first candidate.
            _ => 0,
        }
    };

    let mut trips = Vec::with_capacity(n);
    while trips.len() < n {
        let origin = candidates[rng.gen_range(0..n_int)];
        let dest = match (&cum_dest, bias) {
            (None, _) => candidates[rng.gen_range(0..n_int)],
            (Some(cum), OdBias::Gravity { beta_m, .. }) => {
                // Rejection sampling: draw from the attraction distribution,
                // accept with the distance-decay probability. A bounded
                // retry count keeps the generator total even for far-flung
                // origins (the last draw is accepted unconditionally).
                let po = net.intersections()[origin];
                let beta = beta_m.max(1.0);
                let mut pick = candidates[sample_cum(cum, rng)];
                for _ in 0..24 {
                    let pd = net.intersections()[pick];
                    let d = ((po.x - pd.x).powi(2) + (po.y - pd.y).powi(2)).sqrt();
                    if rng.gen::<f64>() < (-d / beta).exp() {
                        break;
                    }
                    pick = candidates[sample_cum(cum, rng)];
                }
                pick
            }
            (Some(cum), _) => candidates[sample_cum(cum, rng)],
        };
        if origin == dest {
            continue;
        }
        let depart_step = sample_cum(&cum_time, rng);
        trips.push(Trip {
            origin: IntersectionId::from_index(origin),
            dest: IntersectionId::from_index(dest),
            depart_step,
        });
    }
    trips
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadpart_net::UrbanConfig;

    fn net() -> RoadNetwork {
        UrbanConfig::d1().scaled(0.5).generate(3).unwrap()
    }

    #[test]
    fn counts_and_validity() {
        let net = net();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trips = generate_trips(
            &net,
            500,
            100,
            &TemporalProfile::Flat,
            &OdBias::Uniform,
            &mut rng,
        );
        assert_eq!(trips.len(), 500);
        for t in &trips {
            assert_ne!(t.origin, t.dest);
            assert!(t.origin.index() < net.intersection_count());
            assert!(t.depart_step < 100);
        }
    }

    #[test]
    fn peaked_profile_concentrates_departures() {
        let net = net();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trips = generate_trips(
            &net,
            2000,
            100,
            &TemporalProfile::morning(),
            &OdBias::Uniform,
            &mut rng,
        );
        // Morning profile peaks at t = 0.3: the 20..40 band should hold far
        // more departures than the 50..70 band.
        let count = |lo: usize, hi: usize| {
            trips
                .iter()
                .filter(|t| t.depart_step >= lo && t.depart_step < hi)
                .count()
        };
        assert!(count(20, 40) > 2 * count(50, 70));
    }

    #[test]
    fn hotspot_bias_pulls_destinations() {
        let net = net();
        // Single hotspot at the centroid of the network.
        let (mut cx, mut cy) = (0.0, 0.0);
        for p in net.intersections() {
            cx += p.x;
            cy += p.y;
        }
        cx /= net.intersection_count() as f64;
        cy /= net.intersection_count() as f64;
        let hotspot = Hotspot {
            x: cx,
            y: cy,
            amplitude: 10.0,
            sigma_m: 300.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trips = generate_trips(
            &net,
            2000,
            50,
            &TemporalProfile::Flat,
            &OdBias::ToHotspots(vec![hotspot]),
            &mut rng,
        );
        let mean_dist = |points: Vec<(f64, f64)>| {
            points
                .iter()
                .map(|(x, y)| ((x - cx).powi(2) + (y - cy).powi(2)).sqrt())
                .sum::<f64>()
                / points.len() as f64
        };
        let dests = mean_dist(
            trips
                .iter()
                .map(|t| {
                    let p = net.intersection(t.dest);
                    (p.x, p.y)
                })
                .collect(),
        );
        let origins = mean_dist(
            trips
                .iter()
                .map(|t| {
                    let p = net.intersection(t.origin);
                    (p.x, p.y)
                })
                .collect(),
        );
        assert!(
            dests < origins * 0.9,
            "destinations (mean dist {dests:.0} m) not pulled toward hotspot vs origins ({origins:.0} m)"
        );
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        let net = net();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(generate_trips(
            &net,
            10,
            0,
            &TemporalProfile::Flat,
            &OdBias::Uniform,
            &mut rng
        )
        .is_empty());
    }
}
