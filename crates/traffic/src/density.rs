//! Per-segment traffic density time series.

use crate::error::TrafficError;
use serde::{Deserialize, Serialize};

/// Anomaly counts for one density snapshot, computed when the snapshot is
/// recorded. Real telemetry feeds deliver NaNs (sensor dropouts), infinities
/// (unit bugs), and negative readings (calibration drift); aggregating any
/// of them silently poisons every downstream mean, so the history flags
/// them at the door instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepAnomalies {
    /// Values that are NaN or ±infinity.
    pub non_finite: usize,
    /// Finite values below zero.
    pub negative: usize,
}

impl StepAnomalies {
    /// Scans one snapshot.
    pub fn of(densities: &[f64]) -> Self {
        let mut a = Self::default();
        for &d in densities {
            if !d.is_finite() {
                a.non_finite += 1;
            } else if d < 0.0 {
                a.negative += 1;
            }
        }
        a
    }

    /// True when the snapshot contained only finite, non-negative values.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.non_finite == 0 && self.negative == 0
    }

    /// Total anomalous values in the snapshot.
    #[inline]
    pub fn total(&self) -> usize {
        self.non_finite + self.negative
    }
}

/// Densities (vehicles per metre) for every segment at every recorded
/// timestep — the quantity the partitioning framework consumes.
///
/// Snapshots are scanned for anomalies (non-finite or negative values) on
/// entry: [`Self::push`] records them but flags the step, [`Self::try_push`]
/// rejects them outright, and the aggregation accessors
/// ([`Self::window_mean`], [`Self::ewma`]) skip flagged steps so one corrupt
/// reading cannot poison the aggregate the repartitioner consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityHistory {
    n_segments: usize,
    steps: Vec<Vec<f64>>,
    /// Parallel to `steps`; absent entries (older serialized histories)
    /// are treated as clean.
    #[serde(default)]
    anomalies: Vec<StepAnomalies>,
}

impl DensityHistory {
    /// Creates an empty history for `n_segments` segments.
    pub fn new(n_segments: usize) -> Self {
        Self {
            n_segments,
            steps: Vec::new(),
            anomalies: Vec::new(),
        }
    }

    /// Appends one snapshot, flagging (but keeping) anomalous values — the
    /// raw record stays faithful to the feed while the aggregation
    /// accessors skip flagged steps.
    ///
    /// # Panics
    /// Panics if the snapshot length disagrees with `n_segments` (an
    /// internal-logic error, not a data error).
    pub fn push(&mut self, densities: Vec<f64>) {
        assert_eq!(densities.len(), self.n_segments, "snapshot length mismatch");
        self.anomalies.push(StepAnomalies::of(&densities));
        self.steps.push(densities);
    }

    /// Appends one snapshot, rejecting malformed input instead of
    /// panicking or flagging: empty snapshots, length mismatches, and any
    /// non-finite or negative value are [`TrafficError::InvalidData`]. The
    /// ingest path for untrusted feeds.
    ///
    /// # Errors
    /// Returns [`TrafficError::InvalidData`] when the snapshot is empty,
    /// has the wrong length, or contains non-finite / negative values; the
    /// history is unchanged on error.
    pub fn try_push(&mut self, densities: Vec<f64>) -> crate::error::Result<()> {
        if densities.is_empty() {
            return Err(TrafficError::InvalidData("empty density snapshot".into()));
        }
        if densities.len() != self.n_segments {
            return Err(TrafficError::InvalidData(format!(
                "snapshot has {} segments, history expects {}",
                densities.len(),
                self.n_segments
            )));
        }
        let a = StepAnomalies::of(&densities);
        if !a.is_clean() {
            return Err(TrafficError::InvalidData(format!(
                "snapshot contains {} non-finite and {} negative densities",
                a.non_finite, a.negative
            )));
        }
        self.anomalies.push(a);
        self.steps.push(densities);
        Ok(())
    }

    /// Number of recorded timesteps.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no snapshots were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of segments per snapshot.
    #[inline]
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// Densities at timestep `t` — the raw record, flagged or not.
    #[inline]
    pub fn at(&self, t: usize) -> &[f64] {
        &self.steps[t]
    }

    /// Anomaly counts recorded for timestep `t`. Steps recorded before
    /// anomaly tracking existed (deserialized histories) count as clean.
    #[inline]
    pub fn anomalies_at(&self, t: usize) -> StepAnomalies {
        self.anomalies.get(t).copied().unwrap_or_default()
    }

    /// True when timestep `t` carried no anomalous values.
    #[inline]
    pub fn step_is_clean(&self, t: usize) -> bool {
        self.anomalies_at(t).is_clean()
    }

    /// Number of timesteps flagged with at least one anomalous value.
    pub fn flagged_steps(&self) -> usize {
        self.anomalies.iter().filter(|a| !a.is_clean()).count()
    }

    /// Densities at the last recorded timestep, if any.
    pub fn last(&self) -> Option<&[f64]> {
        self.steps.last().map(Vec::as_slice)
    }

    /// Densities at the most recent *clean* timestep, if any — what a
    /// consumer that must not see corrupt readings should serve from.
    pub fn last_clean(&self) -> Option<&[f64]> {
        (0..self.len())
            .rev()
            .find(|&t| self.step_is_clean(t))
            .map(|t| self.at(t))
    }

    /// Mean density over segments at timestep `t` (raw, including any
    /// flagged values).
    pub fn mean_at(&self, t: usize) -> f64 {
        let s = &self.steps[t];
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }

    /// The timestep with the highest network-mean density (the simulated
    /// "peak"), if any snapshots exist.
    pub fn peak_step(&self) -> Option<usize> {
        (0..self.len()).max_by(|&a, &b| self.mean_at(a).total_cmp(&self.mean_at(b)))
    }

    /// Per-segment mean over the clean snapshots among the trailing
    /// `window` (all snapshots when fewer than `window` exist). `None` when
    /// the history is empty, `window == 0`, or every snapshot in the window
    /// is flagged — there is nothing trustworthy to average.
    ///
    /// This is the "sliding window" aggregate the online engine feeds into
    /// repartitioning: smoother than a single snapshot, but bounded-memory
    /// and responsive to recent change. Flagged snapshots are excluded so a
    /// burst of corrupt telemetry cannot drag the aggregate to NaN.
    pub fn window_mean(&self, window: usize) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        self.window_mean_into(window, &mut out).then_some(out)
    }

    /// [`Self::window_mean`] writing into a caller-owned buffer instead of
    /// allocating, returning `false` (with `out` cleared) in the `None`
    /// cases. Feeding the same buffer back every tick — as the streaming
    /// engine does once per epoch — makes the aggregate allocation-free
    /// after the first call.
    pub fn window_mean_into(&self, window: usize, out: &mut Vec<f64>) -> bool {
        out.clear();
        if self.is_empty() || window == 0 {
            return false;
        }
        let take = window.min(self.len());
        let from = self.len() - take;
        out.resize(self.n_segments, 0.0);
        let mut used = 0usize;
        for t in from..self.len() {
            if !self.step_is_clean(t) {
                continue;
            }
            for (m, &v) in out.iter_mut().zip(&self.steps[t]) {
                *m += v;
            }
            used += 1;
        }
        if used == 0 {
            out.clear();
            return false;
        }
        let inv = 1.0 / used as f64;
        out.iter_mut().for_each(|m| *m *= inv);
        true
    }

    /// Per-segment exponentially weighted moving average over the clean
    /// snapshots of the whole history: `ewma_t = alpha * x_t + (1 - alpha)
    /// * ewma_{t-1}`, seeded with the first clean snapshot. `None` when no
    /// clean snapshot exists or `alpha` is outside `(0, 1]`.
    ///
    /// Higher `alpha` tracks the feed more closely; lower `alpha` smooths
    /// harder. `alpha == 1` degenerates to [`Self::last_clean`].
    pub fn ewma(&self, alpha: f64) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        self.ewma_into(alpha, &mut out).then_some(out)
    }

    /// [`Self::ewma`] writing into a caller-owned buffer instead of
    /// allocating, returning `false` (with `out` cleared) in the `None`
    /// cases. See [`Self::window_mean_into`] for the reuse rationale.
    pub fn ewma_into(&self, alpha: f64, out: &mut Vec<f64>) -> bool {
        out.clear();
        if !(alpha > 0.0 && alpha <= 1.0) {
            return false;
        }
        let mut seeded = false;
        for t in 0..self.len() {
            if !self.step_is_clean(t) {
                continue;
            }
            if !seeded {
                out.extend_from_slice(&self.steps[t]);
                seeded = true;
            } else {
                for (a, &v) in out.iter_mut().zip(&self.steps[t]) {
                    *a += alpha * (v - *a);
                }
            }
        }
        if !seeded {
            out.clear();
        }
        seeded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut h = DensityHistory::new(3);
        assert!(h.is_empty());
        h.push(vec![0.1, 0.2, 0.3]);
        h.push(vec![0.3, 0.3, 0.3]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.at(0), &[0.1, 0.2, 0.3]);
        assert_eq!(h.last().unwrap(), &[0.3, 0.3, 0.3]);
        assert!((h.mean_at(0) - 0.2).abs() < 1e-12);
        assert_eq!(h.flagged_steps(), 0);
    }

    #[test]
    fn peak_step_finds_max_mean() {
        let mut h = DensityHistory::new(2);
        h.push(vec![0.1, 0.1]);
        h.push(vec![0.5, 0.4]);
        h.push(vec![0.2, 0.2]);
        assert_eq!(h.peak_step(), Some(1));
        assert_eq!(DensityHistory::new(2).peak_step(), None);
    }

    #[test]
    #[should_panic(expected = "snapshot length mismatch")]
    fn mismatched_snapshot_panics() {
        let mut h = DensityHistory::new(2);
        h.push(vec![0.1]);
    }

    #[test]
    fn push_flags_anomalies_and_accessors_skip_them() {
        let mut h = DensityHistory::new(2);
        h.push(vec![1.0, 1.0]);
        h.push(vec![f64::NAN, -3.0]);
        h.push(vec![3.0, 3.0]);
        assert_eq!(h.flagged_steps(), 1);
        assert!(!h.step_is_clean(1));
        assert_eq!(
            h.anomalies_at(1),
            StepAnomalies {
                non_finite: 1,
                negative: 1
            }
        );
        // Raw access still shows the flagged step; last_clean skips it.
        assert!(h.at(1)[0].is_nan());
        assert_eq!(h.last_clean().unwrap(), &[3.0, 3.0]);
        // Aggregates exclude the flagged step, so they stay finite.
        let m = h.window_mean(3).unwrap();
        assert!((m[0] - 2.0).abs() < 1e-12 && (m[1] - 2.0).abs() < 1e-12);
        let e = h.ewma(0.5).unwrap();
        assert!((e[0] - 2.0).abs() < 1e-12, "1.0 -> 2.0, NaN step skipped");
        // A window covering only the flagged step has nothing to average.
        let mut poisoned = DensityHistory::new(2);
        poisoned.push(vec![f64::INFINITY, 0.0]);
        assert!(poisoned.window_mean(1).is_none());
        assert!(poisoned.ewma(0.5).is_none());
        assert!(poisoned.last_clean().is_none());
    }

    #[test]
    fn try_push_rejects_malformed_snapshots() {
        let mut h = DensityHistory::new(2);
        assert!(h.try_push(vec![0.1, 0.2]).is_ok());
        assert!(h.try_push(vec![]).is_err());
        assert!(h.try_push(vec![0.1]).is_err());
        assert!(h.try_push(vec![0.1, f64::NAN]).is_err());
        assert!(h.try_push(vec![0.1, -0.2]).is_err());
        assert_eq!(h.len(), 1, "rejected snapshots must not be recorded");
        assert_eq!(h.flagged_steps(), 0);
    }

    #[test]
    fn deserialized_histories_without_flags_count_as_clean() {
        // Simulates data written before anomaly tracking existed.
        let json = r#"{"n_segments":2,"steps":[[0.1,0.2],[0.3,0.4]]}"#;
        let h: DensityHistory = serde_json::from_str(json).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.flagged_steps(), 0);
        assert!(h.step_is_clean(1));
        assert_eq!(h.window_mean(2).unwrap().len(), 2);
    }

    #[test]
    fn window_mean_averages_trailing_snapshots() {
        let mut h = DensityHistory::new(2);
        h.push(vec![1.0, 0.0]);
        h.push(vec![2.0, 2.0]);
        h.push(vec![4.0, 4.0]);
        // Last two snapshots only.
        let m = h.window_mean(2).unwrap();
        assert!((m[0] - 3.0).abs() < 1e-12 && (m[1] - 3.0).abs() < 1e-12);
        // Window longer than the history: everything.
        let m = h.window_mean(10).unwrap();
        assert!((m[0] - 7.0 / 3.0).abs() < 1e-12);
        // Window of one equals the last snapshot.
        assert_eq!(h.window_mean(1).unwrap(), h.last().unwrap().to_vec());
        // Degenerate inputs.
        assert!(h.window_mean(0).is_none());
        assert!(DensityHistory::new(2).window_mean(3).is_none());
    }

    #[test]
    fn into_variants_reuse_buffer_and_match_allocating_api() {
        let mut h = DensityHistory::new(2);
        h.push(vec![1.0, 0.0]);
        h.push(vec![2.0, 2.0]);
        h.push(vec![4.0, 4.0]);
        // A dirty, over-sized buffer must come back with exactly the result.
        let mut buf = vec![9.0; 17];
        assert!(h.window_mean_into(2, &mut buf));
        assert_eq!(buf, h.window_mean(2).unwrap());
        let cap = buf.capacity();
        assert!(h.ewma_into(0.5, &mut buf));
        assert_eq!(buf, h.ewma(0.5).unwrap());
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
        // Failure cases clear the buffer instead of leaving stale data.
        assert!(!h.window_mean_into(0, &mut buf));
        assert!(buf.is_empty());
        assert!(!h.ewma_into(0.0, &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn ewma_smooths_and_tracks() {
        let mut h = DensityHistory::new(1);
        h.push(vec![0.0]);
        h.push(vec![1.0]);
        h.push(vec![1.0]);
        // alpha = 0.5: 0 -> 0.5 -> 0.75.
        let e = h.ewma(0.5).unwrap();
        assert!((e[0] - 0.75).abs() < 1e-12);
        // alpha = 1 degenerates to the last snapshot.
        assert_eq!(h.ewma(1.0).unwrap(), h.last().unwrap().to_vec());
        // Invalid alpha / empty history.
        assert!(h.ewma(0.0).is_none());
        assert!(h.ewma(1.5).is_none());
        assert!(DensityHistory::new(1).ewma(0.5).is_none());
    }
}
