//! Per-segment traffic density time series.

use serde::{Deserialize, Serialize};

/// Densities (vehicles per metre) for every segment at every recorded
/// timestep — the quantity the partitioning framework consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityHistory {
    n_segments: usize,
    steps: Vec<Vec<f64>>,
}

impl DensityHistory {
    /// Creates an empty history for `n_segments` segments.
    pub fn new(n_segments: usize) -> Self {
        Self {
            n_segments,
            steps: Vec::new(),
        }
    }

    /// Appends one snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot length disagrees with `n_segments` (an
    /// internal-logic error, not a data error).
    pub fn push(&mut self, densities: Vec<f64>) {
        assert_eq!(densities.len(), self.n_segments, "snapshot length mismatch");
        self.steps.push(densities);
    }

    /// Number of recorded timesteps.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no snapshots were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of segments per snapshot.
    #[inline]
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// Densities at timestep `t`.
    #[inline]
    pub fn at(&self, t: usize) -> &[f64] {
        &self.steps[t]
    }

    /// Densities at the last recorded timestep, if any.
    pub fn last(&self) -> Option<&[f64]> {
        self.steps.last().map(Vec::as_slice)
    }

    /// Mean density over segments at timestep `t`.
    pub fn mean_at(&self, t: usize) -> f64 {
        let s = &self.steps[t];
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }

    /// The timestep with the highest network-mean density (the simulated
    /// "peak"), if any snapshots exist.
    pub fn peak_step(&self) -> Option<usize> {
        (0..self.len()).max_by(|&a, &b| self.mean_at(a).total_cmp(&self.mean_at(b)))
    }

    /// Per-segment mean over the trailing `window` snapshots (all snapshots
    /// when fewer than `window` exist). `None` when the history is empty or
    /// `window == 0` — there is nothing to average.
    ///
    /// This is the "sliding window" aggregate the online engine feeds into
    /// repartitioning: smoother than a single snapshot, but bounded-memory
    /// and responsive to recent change.
    pub fn window_mean(&self, window: usize) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        self.window_mean_into(window, &mut out).then_some(out)
    }

    /// [`Self::window_mean`] writing into a caller-owned buffer instead of
    /// allocating, returning `false` (with `out` cleared) in the `None`
    /// cases. Feeding the same buffer back every tick — as the streaming
    /// engine does once per epoch — makes the aggregate allocation-free
    /// after the first call.
    pub fn window_mean_into(&self, window: usize, out: &mut Vec<f64>) -> bool {
        out.clear();
        if self.is_empty() || window == 0 {
            return false;
        }
        let take = window.min(self.len());
        let recent = &self.steps[self.len() - take..];
        out.resize(self.n_segments, 0.0);
        for snap in recent {
            for (m, &v) in out.iter_mut().zip(snap) {
                *m += v;
            }
        }
        let inv = 1.0 / take as f64;
        out.iter_mut().for_each(|m| *m *= inv);
        true
    }

    /// Per-segment exponentially weighted moving average over the whole
    /// history: `ewma_t = alpha * x_t + (1 - alpha) * ewma_{t-1}`, seeded
    /// with the first snapshot. `None` when the history is empty or `alpha`
    /// is outside `(0, 1]`.
    ///
    /// Higher `alpha` tracks the feed more closely; lower `alpha` smooths
    /// harder. `alpha == 1` degenerates to [`Self::last`].
    pub fn ewma(&self, alpha: f64) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        self.ewma_into(alpha, &mut out).then_some(out)
    }

    /// [`Self::ewma`] writing into a caller-owned buffer instead of
    /// allocating, returning `false` (with `out` cleared) in the `None`
    /// cases. See [`Self::window_mean_into`] for the reuse rationale.
    pub fn ewma_into(&self, alpha: f64, out: &mut Vec<f64>) -> bool {
        out.clear();
        if self.is_empty() || !(alpha > 0.0 && alpha <= 1.0) {
            return false;
        }
        out.extend_from_slice(&self.steps[0]);
        for snap in &self.steps[1..] {
            for (a, &v) in out.iter_mut().zip(snap) {
                *a += alpha * (v - *a);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut h = DensityHistory::new(3);
        assert!(h.is_empty());
        h.push(vec![0.1, 0.2, 0.3]);
        h.push(vec![0.3, 0.3, 0.3]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.at(0), &[0.1, 0.2, 0.3]);
        assert_eq!(h.last().unwrap(), &[0.3, 0.3, 0.3]);
        assert!((h.mean_at(0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn peak_step_finds_max_mean() {
        let mut h = DensityHistory::new(2);
        h.push(vec![0.1, 0.1]);
        h.push(vec![0.5, 0.4]);
        h.push(vec![0.2, 0.2]);
        assert_eq!(h.peak_step(), Some(1));
        assert_eq!(DensityHistory::new(2).peak_step(), None);
    }

    #[test]
    #[should_panic(expected = "snapshot length mismatch")]
    fn mismatched_snapshot_panics() {
        let mut h = DensityHistory::new(2);
        h.push(vec![0.1]);
    }

    #[test]
    fn window_mean_averages_trailing_snapshots() {
        let mut h = DensityHistory::new(2);
        h.push(vec![1.0, 0.0]);
        h.push(vec![2.0, 2.0]);
        h.push(vec![4.0, 4.0]);
        // Last two snapshots only.
        let m = h.window_mean(2).unwrap();
        assert!((m[0] - 3.0).abs() < 1e-12 && (m[1] - 3.0).abs() < 1e-12);
        // Window longer than the history: everything.
        let m = h.window_mean(10).unwrap();
        assert!((m[0] - 7.0 / 3.0).abs() < 1e-12);
        // Window of one equals the last snapshot.
        assert_eq!(h.window_mean(1).unwrap(), h.last().unwrap().to_vec());
        // Degenerate inputs.
        assert!(h.window_mean(0).is_none());
        assert!(DensityHistory::new(2).window_mean(3).is_none());
    }

    #[test]
    fn into_variants_reuse_buffer_and_match_allocating_api() {
        let mut h = DensityHistory::new(2);
        h.push(vec![1.0, 0.0]);
        h.push(vec![2.0, 2.0]);
        h.push(vec![4.0, 4.0]);
        // A dirty, over-sized buffer must come back with exactly the result.
        let mut buf = vec![9.0; 17];
        assert!(h.window_mean_into(2, &mut buf));
        assert_eq!(buf, h.window_mean(2).unwrap());
        let cap = buf.capacity();
        assert!(h.ewma_into(0.5, &mut buf));
        assert_eq!(buf, h.ewma(0.5).unwrap());
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
        // Failure cases clear the buffer instead of leaving stale data.
        assert!(!h.window_mean_into(0, &mut buf));
        assert!(buf.is_empty());
        assert!(!h.ewma_into(0.0, &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn ewma_smooths_and_tracks() {
        let mut h = DensityHistory::new(1);
        h.push(vec![0.0]);
        h.push(vec![1.0]);
        h.push(vec![1.0]);
        // alpha = 0.5: 0 -> 0.5 -> 0.75.
        let e = h.ewma(0.5).unwrap();
        assert!((e[0] - 0.75).abs() < 1e-12);
        // alpha = 1 degenerates to the last snapshot.
        assert_eq!(h.ewma(1.0).unwrap(), h.last().unwrap().to_vec());
        // Invalid alpha / empty history.
        assert!(h.ewma(0.0).is_none());
        assert!(h.ewma(1.5).is_none());
        assert!(DensityHistory::new(1).ewma(0.5).is_none());
    }
}
