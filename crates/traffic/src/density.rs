//! Per-segment traffic density time series.

use serde::{Deserialize, Serialize};

/// Densities (vehicles per metre) for every segment at every recorded
/// timestep — the quantity the partitioning framework consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityHistory {
    n_segments: usize,
    steps: Vec<Vec<f64>>,
}

impl DensityHistory {
    /// Creates an empty history for `n_segments` segments.
    pub fn new(n_segments: usize) -> Self {
        Self {
            n_segments,
            steps: Vec::new(),
        }
    }

    /// Appends one snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot length disagrees with `n_segments` (an
    /// internal-logic error, not a data error).
    pub fn push(&mut self, densities: Vec<f64>) {
        assert_eq!(densities.len(), self.n_segments, "snapshot length mismatch");
        self.steps.push(densities);
    }

    /// Number of recorded timesteps.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no snapshots were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of segments per snapshot.
    #[inline]
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// Densities at timestep `t`.
    #[inline]
    pub fn at(&self, t: usize) -> &[f64] {
        &self.steps[t]
    }

    /// Densities at the last recorded timestep, if any.
    pub fn last(&self) -> Option<&[f64]> {
        self.steps.last().map(Vec::as_slice)
    }

    /// Mean density over segments at timestep `t`.
    pub fn mean_at(&self, t: usize) -> f64 {
        let s = &self.steps[t];
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }

    /// The timestep with the highest network-mean density (the simulated
    /// "peak"), if any snapshots exist.
    pub fn peak_step(&self) -> Option<usize> {
        (0..self.len()).max_by(|&a, &b| {
            self.mean_at(a)
                .partial_cmp(&self.mean_at(b))
                .expect("finite densities")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut h = DensityHistory::new(3);
        assert!(h.is_empty());
        h.push(vec![0.1, 0.2, 0.3]);
        h.push(vec![0.3, 0.3, 0.3]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.at(0), &[0.1, 0.2, 0.3]);
        assert_eq!(h.last().unwrap(), &[0.3, 0.3, 0.3]);
        assert!((h.mean_at(0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn peak_step_finds_max_mean() {
        let mut h = DensityHistory::new(2);
        h.push(vec![0.1, 0.1]);
        h.push(vec![0.5, 0.4]);
        h.push(vec![0.2, 0.2]);
        assert_eq!(h.peak_step(), Some(1));
        assert_eq!(DensityHistory::new(2).peak_step(), None);
    }

    #[test]
    #[should_panic(expected = "snapshot length mismatch")]
    fn mismatched_snapshot_panics() {
        let mut h = DensityHistory::new(2);
        h.push(vec![0.1]);
    }
}
