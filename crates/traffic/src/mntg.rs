//! MNTG-style random traffic generation.
//!
//! The paper populates its large networks with the web-based "Minnesota
//! Traffic Generator" (MNTG, Mokbel et al. \[10\]): random vehicles are
//! dropped onto the map, their trajectories recorded for 100 continuous
//! timestamps, positions mapped to road segments, and per-segment densities
//! computed in vehicles/metre. This module reproduces that pipeline on top
//! of our own router + microsimulator, since the web service and the
//! Melbourne extracts are not available.

use crate::density::DensityHistory;
use crate::error::Result;
use crate::field::CongestionField;
use crate::field::Hotspot;
use crate::microsim::{simulate, MicrosimConfig, MicrosimStats};
use crate::profile::TemporalProfile;
use crate::trip::{generate_trips, OdBias};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use roadpart_net::RoadNetwork;
use serde::{Deserialize, Serialize};

/// Configuration mirroring an MNTG run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MntgConfig {
    /// Number of vehicles to populate (paper: 25,246 / 62,300 / 84,999).
    pub vehicles: usize,
    /// Number of continuous timestamps to record (paper: 100).
    pub timestamps: usize,
    /// Seconds per timestamp.
    pub step_seconds: f64,
    /// Demand curve over the window.
    pub profile: TemporalProfile,
    /// Bias destinations toward urban hotspots (creates the spatially
    /// heterogeneous congestion the partitioner is designed to find); MNTG's
    /// plain random traffic corresponds to `false`.
    pub hotspot_bias: bool,
    /// Journey legs per vehicle (random-waypoint roaming). `None` sizes the
    /// leg count automatically so each vehicle stays on the road for about
    /// `dwell_frac` of the recording window — MNTG vehicles keep moving for
    /// most of the recording, which is what produces meaningful
    /// instantaneous densities.
    pub legs: Option<usize>,
    /// Target fraction of the window a vehicle spends driving when `legs`
    /// is `None`.
    pub dwell_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MntgConfig {
    fn default() -> Self {
        Self {
            vehicles: 1_000,
            timestamps: 100,
            step_seconds: 60.0,
            profile: TemporalProfile::morning(),
            hotspot_bias: true,
            legs: None,
            dwell_frac: 0.5,
            seed: 0,
        }
    }
}

/// Generates random traffic on `net` and returns per-segment densities at
/// each of `cfg.timestamps` timestamps, plus simulation statistics.
///
/// # Errors
/// Propagates microsimulation configuration failures.
pub fn generate_traffic(
    net: &RoadNetwork,
    cfg: &MntgConfig,
) -> Result<(DensityHistory, MicrosimStats)> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let beta_m = gravity_beta(net);
    let bias = if cfg.hotspot_bias {
        let field = CongestionField::urban_default(net, cfg.seed);
        let hotspots: Vec<Hotspot> = field.hotspots().to_vec();
        OdBias::Gravity { hotspots, beta_m }
    } else {
        OdBias::Uniform
    };
    let trips = generate_trips(
        net,
        cfg.vehicles,
        cfg.timestamps,
        &cfg.profile,
        &bias,
        &mut rng,
    );
    let legs = cfg.legs.unwrap_or_else(|| auto_legs(net, cfg));
    let sim_cfg = MicrosimConfig {
        step_seconds: cfg.step_seconds,
        steps: cfg.timestamps,
        legs: legs.max(1),
        reroute_seed: cfg.seed ^ 0xabcd_ef01,
        redispatch_beta_m: if cfg.hotspot_bias { Some(beta_m) } else { None },
        ..MicrosimConfig::default()
    };
    simulate(net, &trips, &sim_cfg)
}

/// Gravity distance-decay scale: about a third of the network side length,
/// so most journeys stay within their district.
fn gravity_beta(net: &RoadNetwork) -> f64 {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in net.intersections() {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let side = ((max_x - min_x).max(1.0) * (max_y - min_y).max(1.0)).sqrt();
    0.3 * side
}

/// Estimates how many random-waypoint legs keep a vehicle driving for
/// `dwell_frac` of the window: the expected OD distance (~0.52 x side for
/// uniform draws, ~0.6 x beta under the gravity model), inflated ~1.3x for
/// grid routing, at the mean free-flow speed.
fn auto_legs(net: &RoadNetwork, cfg: &MntgConfig) -> usize {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in net.intersections() {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let side = ((max_x - min_x).max(1.0) * (max_y - min_y).max(1.0)).sqrt();
    let mean_speed = if net.segment_count() == 0 {
        13.9
    } else {
        net.segments().iter().map(|s| s.free_speed_mps).sum::<f64>() / net.segment_count() as f64
    };
    let mean_od = if cfg.hotspot_bias {
        (0.6 * gravity_beta(net)).min(0.52 * side)
    } else {
        0.52 * side
    };
    let leg_seconds = (1.3 * mean_od / mean_speed).max(1.0);
    let window = cfg.step_seconds * cfg.timestamps as f64;
    let dwell = cfg.dwell_frac.clamp(0.05, 1.0) * window;
    ((dwell / leg_seconds).round() as usize).clamp(1, 2_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadpart_net::UrbanConfig;

    #[test]
    fn produces_requested_timestamps() {
        let net = UrbanConfig::d1().scaled(0.4).generate(21).unwrap();
        let cfg = MntgConfig {
            vehicles: 200,
            timestamps: 30,
            step_seconds: 30.0,
            ..MntgConfig::default()
        };
        let (hist, stats) = generate_traffic(&net, &cfg).unwrap();
        assert_eq!(hist.len(), 30);
        assert_eq!(hist.n_segments(), net.segment_count());
        assert!(stats.departed > 100, "departed {}", stats.departed);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = UrbanConfig::d1().scaled(0.3).generate(22).unwrap();
        let cfg = MntgConfig {
            vehicles: 100,
            timestamps: 10,
            step_seconds: 30.0,
            seed: 7,
            ..MntgConfig::default()
        };
        let (h1, _) = generate_traffic(&net, &cfg).unwrap();
        let (h2, _) = generate_traffic(&net, &cfg).unwrap();
        for t in 0..h1.len() {
            assert_eq!(h1.at(t), h2.at(t));
        }
    }

    #[test]
    fn hotspot_bias_creates_spatial_heterogeneity() {
        let net = UrbanConfig::d1().scaled(0.6).generate(23).unwrap();
        let biased = MntgConfig {
            vehicles: 800,
            timestamps: 40,
            step_seconds: 60.0,
            hotspot_bias: true,
            seed: 9,
            ..MntgConfig::default()
        };
        let (hist, _) = generate_traffic(&net, &biased).unwrap();
        let peak = hist.peak_step().unwrap();
        let d = hist.at(peak);
        // Coefficient of variation across segments should be substantial:
        // congestion concentrates around hotspots.
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        assert!(mean > 0.0);
        let var = d.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / d.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.5, "expected heterogeneous congestion, cv = {cv}");
    }
}
