//! Property-based tests for the traffic substrate.

use proptest::prelude::*;
use roadpart_net::{IntersectionId, RoadNetworkBuilder};
use roadpart_traffic::{
    simulate, DensityHistory, MicrosimConfig, Router, StepAnomalies, TemporalProfile, Trip,
};

/// Random small strongly-connected-ish network: a two-way line backbone
/// plus random one-way chords.
fn arb_network() -> impl Strategy<Value = roadpart_net::RoadNetwork> {
    (3usize..15).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n), 0..n);
        (Just(n), chords).prop_map(|(n, chords)| {
            let mut b = RoadNetworkBuilder::new();
            let pts: Vec<_> = (0..n)
                .map(|i| b.intersection(i as f64 * 100.0, (i % 3) as f64 * 80.0))
                .collect();
            for w in pts.windows(2) {
                b.two_way_road(w[0], w[1]);
            }
            for &(a, c) in &chords {
                if a != c {
                    b.one_way_road(pts[a], pts[c]);
                }
            }
            b.build().unwrap()
        })
    })
}

/// Floyd–Warshall distances over segment free-flow times.
fn floyd_warshall(net: &roadpart_net::RoadNetwork) -> Vec<Vec<f64>> {
    let n = net.intersection_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for seg in net.segments() {
        let w = seg.length_m / seg.free_speed_mps;
        let (a, b) = (seg.from.index(), seg.to.index());
        if w < d[a][b] {
            d[a][b] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dijkstra route costs equal Floyd–Warshall shortest distances, and
    /// every returned route is a contiguous walk from origin to destination.
    #[test]
    fn router_is_optimal(net in arb_network()) {
        let fw = floyd_warshall(&net);
        let mut router = Router::new(&net);
        let n = net.intersection_count();
        // Index loops intentional: `from`/`to` name both graph vertices and
        // the FW matrix cells being cross-checked.
        #[allow(clippy::needless_range_loop)]
        for from in 0..n.min(6) {
            #[allow(clippy::needless_range_loop)]
            for to in 0..n.min(6) {
                let result = router.route(
                    IntersectionId::from_index(from),
                    IntersectionId::from_index(to),
                    |s| {
                        let seg = net.segment(s);
                        seg.length_m / seg.free_speed_mps
                    },
                );
                match result {
                    Ok(route) => {
                        // Contiguity + endpoints.
                        let mut at = from;
                        let mut cost = 0.0;
                        for &s in &route {
                            let seg = net.segment(s);
                            prop_assert_eq!(seg.from.index(), at);
                            at = seg.to.index();
                            cost += seg.length_m / seg.free_speed_mps;
                        }
                        prop_assert_eq!(at, to);
                        prop_assert!(
                            (cost - fw[from][to]).abs() < 1e-9,
                            "route cost {cost} != FW {}", fw[from][to]
                        );
                    }
                    Err(_) => {
                        prop_assert!(
                            fw[from][to].is_infinite(),
                            "router failed but FW found {from}->{to} at {}",
                            fw[from][to]
                        );
                    }
                }
            }
        }
    }

    /// Simulation invariants: snapshot dimensions, non-negative densities,
    /// completion accounting, determinism.
    #[test]
    fn simulation_invariants(net in arb_network(), n_trips in 1usize..40) {
        let n_int = net.intersection_count();
        let trips: Vec<Trip> = (0..n_trips)
            .map(|i| Trip {
                origin: IntersectionId::from_index(i % n_int),
                dest: IntersectionId::from_index((i * 7 + 1) % n_int),
                depart_step: i % 5,
            })
            .filter(|t| t.origin != t.dest)
            .collect();
        let cfg = MicrosimConfig {
            step_seconds: 15.0,
            steps: 12,
            legs: 2,
            ..MicrosimConfig::default()
        };
        let (h1, s1) = simulate(&net, &trips, &cfg).unwrap();
        prop_assert_eq!(h1.len(), 12);
        for t in 0..h1.len() {
            prop_assert_eq!(h1.at(t).len(), net.segment_count());
            prop_assert!(h1.at(t).iter().all(|&d| d >= 0.0 && d.is_finite()));
        }
        prop_assert!(s1.departed + s1.unroutable <= trips.len() + s1.completed);
        // Deterministic re-run.
        let (h2, s2) = simulate(&net, &trips, &cfg).unwrap();
        prop_assert_eq!(s1.departed, s2.departed);
        for t in 0..h1.len() {
            prop_assert_eq!(h1.at(t), h2.at(t));
        }
    }

    /// Density-history hardening: arbitrary mixes of clean, NaN-bearing,
    /// infinite, and negative snapshots never produce a non-finite or
    /// negative aggregate; `try_push` accepts exactly the clean non-empty
    /// snapshots; flag counts match a direct scan.
    #[test]
    fn density_history_quarantines_anomalies(
        snaps in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    4 => 0.0f64..2.0,
                    1 => Just(f64::NAN),
                    1 => Just(f64::INFINITY),
                    1 => Just(f64::NEG_INFINITY),
                    1 => -2.0f64..0.0,
                ],
                3,
            ),
            0..12,
        ),
        window in 1usize..8,
        alpha in 0.05f64..1.0,
    ) {
        let mut flagged = DensityHistory::new(3);
        let mut strict = DensityHistory::new(3);
        let mut expect_clean = 0usize;
        for s in &snaps {
            let scan = StepAnomalies::of(s);
            prop_assert_eq!(
                scan.total(),
                s.iter().filter(|d| !d.is_finite() || **d < 0.0).count()
            );
            flagged.push(s.to_vec());
            let accepted = strict.try_push(s.to_vec()).is_ok();
            prop_assert_eq!(accepted, scan.is_clean());
            if scan.is_clean() {
                expect_clean += 1;
            }
        }
        prop_assert_eq!(flagged.len(), snaps.len());
        prop_assert_eq!(strict.len(), expect_clean);
        prop_assert_eq!(flagged.flagged_steps(), snaps.len() - expect_clean);
        // Empty snapshots are rejected regardless of content.
        prop_assert!(DensityHistory::new(0).try_push(vec![]).is_err());
        // Aggregates either refuse (no clean data in scope) or come back sane.
        match flagged.window_mean(window) {
            Some(v) => prop_assert!(v.iter().all(|d| d.is_finite() && *d >= 0.0)),
            None => {
                let take = window.min(flagged.len());
                let clean_in_window = (flagged.len() - take..flagged.len())
                    .filter(|&t| flagged.step_is_clean(t))
                    .count();
                prop_assert_eq!(clean_in_window, 0);
            }
        }
        match flagged.ewma(alpha) {
            Some(v) => prop_assert!(v.iter().all(|d| d.is_finite() && *d >= 0.0)),
            None => prop_assert_eq!(flagged.flagged_steps(), flagged.len()),
        }
        if let Some(lc) = flagged.last_clean() {
            prop_assert!(lc.iter().all(|d| d.is_finite() && *d >= 0.0));
        }
    }

    /// Temporal profiles stay in (0, 1] across their whole domain.
    #[test]
    fn profiles_bounded(t in -1.0f64..2.0, centre in 0.0f64..1.0, width in 0.01f64..0.5, base in 0.0f64..1.0) {
        for p in [
            TemporalProfile::Flat,
            TemporalProfile::SinglePeak { centre, width, base },
            TemporalProfile::DoublePeak { base },
        ] {
            let f = p.factor(t);
            prop_assert!(f > 0.0 && f <= 1.0 + 1e-12, "{p:?} at {t}: {f}");
        }
    }
}
