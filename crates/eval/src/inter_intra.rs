//! The `inter` and `intra` metrics (paper §6.2, footnotes 3–4).
//!
//! * `inter(P)` — average, over spatially adjacent partition pairs, of the
//!   mean absolute density difference between the two partitions' nodes.
//!   Quantifies C.3 (inter-partition heterogeneity): **higher is better**.
//! * `intra(P)` — average, over partitions, of the mean absolute pairwise
//!   density difference within the partition. Quantifies C.4
//!   (intra-partition homogeneity): **lower is better**.

use crate::adjacency::PartitionAdjacency;
use crate::distances::{mean_abs_cross, mean_abs_pairwise};

/// Groups feature values by partition label.
pub(crate) fn grouped_features(features: &[f64], labels: &[usize], k: usize) -> Vec<Vec<f64>> {
    let mut groups = vec![Vec::new(); k];
    for (&f, &l) in features.iter().zip(labels) {
        groups[l].push(f);
    }
    groups
}

/// `inter(P)`: mean inter-partition distance over adjacent pairs;
/// `0.0` when no two partitions are adjacent.
pub fn inter_metric(groups: &[Vec<f64>], adjacency: &PartitionAdjacency) -> f64 {
    if adjacency.pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = adjacency
        .pairs
        .iter()
        .map(|&(a, b)| mean_abs_cross(&groups[a], &groups[b]))
        .sum();
    total / adjacency.pairs.len() as f64
}

/// `intra(P)`: mean intra-partition pairwise distance over partitions;
/// singleton partitions contribute `0.0`.
pub fn intra_metric(groups: &[Vec<f64>]) -> f64 {
    if groups.is_empty() {
        return 0.0;
    }
    let total: f64 = groups.iter().map(|g| mean_abs_pairwise(g)).sum();
    total / groups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::partition_adjacency;
    use roadpart_linalg::CsrMatrix;

    /// Path of 6 nodes, densities two tight groups, labels split 3/3.
    fn setup() -> (Vec<Vec<f64>>, PartitionAdjacency) {
        let adj = CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
            ],
        )
        .unwrap();
        let labels = [0, 0, 0, 1, 1, 1];
        let features = [1.0, 1.1, 0.9, 5.0, 5.1, 4.9];
        let pa = partition_adjacency(&adj, &labels, 2);
        (grouped_features(&features, &labels, 2), pa)
    }

    #[test]
    fn good_partitioning_scores_well() {
        let (groups, pa) = setup();
        let inter = inter_metric(&groups, &pa);
        let intra = intra_metric(&groups);
        assert!(inter > 3.5, "inter = {inter}");
        assert!(intra < 0.2, "intra = {intra}");
    }

    #[test]
    fn mixed_partitioning_scores_poorly() {
        // Same data, alternating labels: intra large, inter small.
        let adj = CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
            ],
        )
        .unwrap();
        let labels = [0, 1, 0, 1, 0, 1];
        let features = [1.0, 1.1, 0.9, 5.0, 5.1, 4.9];
        let pa = partition_adjacency(&adj, &labels, 2);
        let groups = grouped_features(&features, &labels, 2);
        let inter = inter_metric(&groups, &pa);
        let intra = intra_metric(&groups);
        assert!(intra > 2.0, "intra = {intra}");
        assert!(inter < 3.0, "inter = {inter}");
    }

    #[test]
    fn no_adjacency_gives_zero_inter() {
        let pa = PartitionAdjacency {
            pairs: vec![],
            neighbors: vec![vec![], vec![]],
        };
        let groups = vec![vec![1.0], vec![2.0]];
        assert_eq!(inter_metric(&groups, &pa), 0.0);
    }

    #[test]
    fn singletons_give_zero_intra() {
        let groups = vec![vec![1.0], vec![9.0]];
        assert_eq!(intra_metric(&groups), 0.0);
    }
}
