//! Weighted Newman modularity.
//!
//! §7 observes that the α-Cut matrix equals the *negative* of the
//! modularity matrix `B = A − d dᵀ/(2m)`, so minimizing α-Cut approximately
//! maximizes modularity. This module provides the modularity value used to
//! verify that claim empirically (ablation A1).

use roadpart_linalg::CsrMatrix;

/// `Q = (1/2m) Σ_ij (A_ij − d_i d_j / 2m) δ(c_i, c_j)`; zero for an
/// edgeless graph. **Higher is better**, bounded by 1.
pub fn modularity(adj: &CsrMatrix, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), adj.dim(), "label/graph size mismatch");
    let d = adj.degrees();
    let two_m: f64 = d.iter().sum();
    if two_m <= 0.0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    // Q = sum_c [ W(c,c)/2m - (vol_c / 2m)^2 ].
    let mut internal = vec![0.0f64; k];
    let mut volume = vec![0.0f64; k];
    for (u, v, w) in adj.iter() {
        if labels[u] == labels[v] {
            internal[labels[u]] += w;
        }
    }
    for (i, &di) in d.iter().enumerate() {
        volume[labels[i]] += di;
    }
    (0..k)
        .map(|c| internal[c] / two_m - (volume[c] / two_m).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn hand_computed_value() {
        // Two triangles + bridge, 7 unit edges, 2m = 14.
        // Split at the bridge: internal per side = 6 (directed), volume = 7.
        // Q = 2 * (6/14 - (7/14)^2) = 2 * (3/7 - 1/4) = 5/14.
        let q = modularity(&two_triangles(), &[0, 0, 0, 1, 1, 1]);
        assert!((q - 5.0 / 14.0).abs() < 1e-12, "q = {q}");
    }

    #[test]
    fn single_partition_is_zero() {
        let q = modularity(&two_triangles(), &[0; 6]);
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn planted_split_beats_random_split() {
        let g = two_triangles();
        let good = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let bad = modularity(&g, &[0, 1, 0, 1, 0, 1]);
        assert!(good > bad);
    }

    #[test]
    fn edgeless_graph() {
        let g = CsrMatrix::from_triplets(3, &[]).unwrap();
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }
}
