//! The average NcutSilhouette (ANS) measure.
//!
//! Defined in Ji & Geroliminis \[5\] specifically for road-network partition
//! evaluation and used by the paper both as its overall quality score and as
//! the criterion selecting the optimal number of partitions (the k at the
//! ANS minimum). We reconstruct it as a silhouette over *nodes* (silhouettes
//! average over points, which keeps the measure from rewarding degenerate
//! outlier-carving — a singleton partition has zero internal distance but
//! negligible node weight):
//!
//! `ANS(P) = (1/|V|) Σ_v a(v) / b(v)`
//!
//! where `a(v)` is the mean absolute density difference between `v` and the
//! other members of its partition, and `b(v)` the mean absolute difference
//! between `v` and the nodes of partitions spatially adjacent to `v`'s.
//! **Lower is better.** See DESIGN.md "Substitutions" for the
//! reconstruction rationale.

use crate::adjacency::PartitionAdjacency;
use roadpart_linalg::ord::sort_f64;

/// Floor on the inter distance (caps the ratio for adjacent partitions with
/// indistinguishable densities instead of dividing by zero).
const MIN_INTER: f64 = 1e-12;

/// Computes the node-averaged NcutSilhouette.
///
/// Nodes in singleton partitions contribute `0` (no internal
/// heterogeneity); nodes whose partition has no spatial neighbour
/// contribute `1` if their partition is internally heterogeneous, else `0`.
pub fn ans(groups: &[Vec<f64>], adjacency: &PartitionAdjacency) -> f64 {
    let n: usize = groups.iter().map(Vec::len).sum();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (i, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        // Sorted own-group values with prefix sums for O(log) per-node
        // mean absolute difference.
        let own = SortedPrefix::new(group);
        // Sorted union of all spatially adjacent partitions' values.
        let neigh_values: Vec<f64> = adjacency.neighbors[i]
            .iter()
            .flat_map(|&j| groups[j].iter().copied())
            .collect();
        let neigh = if neigh_values.is_empty() {
            None
        } else {
            Some(SortedPrefix::new(&neigh_values))
        };
        for &v in group {
            // a(v): mean |v - u| over the other members (0 for singletons).
            let a = if group.len() >= 2 {
                own.sum_abs_diff(v) / (group.len() - 1) as f64
            } else {
                0.0
            };
            match &neigh {
                Some(nb) => {
                    let b = nb.sum_abs_diff(v) / neigh_values.len() as f64;
                    total += a / b.max(MIN_INTER);
                }
                None => {
                    total += if a > 0.0 { 1.0 } else { 0.0 };
                }
            }
        }
    }
    total / n as f64
}

/// Sorted values plus prefix sums: `sum_abs_diff(x)` returns
/// `Σ_u |x - u|` in `O(log n)`.
struct SortedPrefix {
    sorted: Vec<f64>,
    prefix: Vec<f64>,
    total: f64,
}

impl SortedPrefix {
    fn new(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sort_f64(&mut sorted);
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        let mut running = 0.0;
        prefix.push(0.0);
        for &v in &sorted {
            running += v;
            prefix.push(running);
        }
        Self {
            sorted,
            prefix,
            total: running,
        }
    }

    /// `Σ_u |x - u|` over all stored values (including an exact copy of x,
    /// which contributes 0).
    fn sum_abs_diff(&self, x: f64) -> f64 {
        let pos = self.sorted.partition_point(|&y| y <= x);
        let below = x * pos as f64 - self.prefix[pos];
        let above = (self.total - self.prefix[pos]) - x * (self.sorted.len() - pos) as f64;
        below + above
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::partition_adjacency;
    use crate::inter_intra::grouped_features;
    use roadpart_linalg::CsrMatrix;

    fn path6() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn perfect_split_near_zero() {
        let features = [1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let labels = [0, 0, 0, 1, 1, 1];
        let score = ans(
            &grouped_features(&features, &labels, 2),
            &partition_adjacency(&path6(), &labels, 2),
        );
        assert!(score < 1e-9, "perfect split: {score}");
    }

    #[test]
    fn clean_beats_mixed() {
        let features = [1.0, 1.1, 0.9, 5.0, 5.1, 4.9];
        let clean = [0, 0, 0, 1, 1, 1];
        let mixed = [0, 1, 0, 1, 0, 1];
        let s_clean = ans(
            &grouped_features(&features, &clean, 2),
            &partition_adjacency(&path6(), &clean, 2),
        );
        let s_mixed = ans(
            &grouped_features(&features, &mixed, 2),
            &partition_adjacency(&path6(), &mixed, 2),
        );
        assert!(s_clean < s_mixed, "{s_clean} !< {s_mixed}");
    }

    #[test]
    fn outlier_carving_not_rewarded() {
        // Carving one extreme node into a singleton must not drive ANS to
        // ~0 while the rest of the network stays badly mixed.
        let features = [1.0, 5.0, 1.2, 4.8, 0.9, 99.0];
        let carved = [0, 0, 0, 0, 0, 1]; // outlier alone, everything else mixed
        let honest = [0, 1, 0, 1, 0, 2]; // density-consistent grouping
        let s_carved = ans(
            &grouped_features(&features, &carved, 2),
            &partition_adjacency(&path6(), &carved, 2),
        );
        let s_honest = ans(
            &grouped_features(&features, &honest, 3),
            &partition_adjacency(&path6(), &honest, 3),
        );
        assert!(
            s_honest < s_carved,
            "honest {s_honest} should beat outlier carving {s_carved}"
        );
    }

    #[test]
    fn homogeneous_everything_capped() {
        let features = [2.0; 6];
        let labels = [0, 0, 0, 1, 1, 1];
        let score = ans(
            &grouped_features(&features, &labels, 2),
            &partition_adjacency(&path6(), &labels, 2),
        );
        assert_eq!(score, 0.0);
    }

    #[test]
    fn isolated_heterogeneous_partition_penalized() {
        let adj = CsrMatrix::from_undirected_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let labels = [0, 0, 1, 1];
        let features = [0.0, 9.0, 5.0, 5.0];
        let score = ans(
            &grouped_features(&features, &labels, 2),
            &partition_adjacency(&adj, &labels, 2),
        );
        // Partition 0 isolated and heterogeneous: both nodes contribute 1.
        // Partition 1 isolated and uniform: both contribute 0. Mean = 0.5.
        assert!((score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorted_prefix_matches_naive() {
        let values = [3.0, -1.0, 2.0, 2.0, 7.5];
        let sp = SortedPrefix::new(&values);
        for x in [-2.0, 0.0, 2.0, 10.0] {
            let naive: f64 = values.iter().map(|v| (x - v).abs()).sum();
            assert!((sp.sum_abs_diff(x) - naive).abs() < 1e-10);
        }
    }
}
