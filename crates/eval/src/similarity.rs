//! Partition-similarity measures.
//!
//! The paper's motivating use case is *repeated* partitioning "at regular
//! intervals of time": quantifying how much the partition structure drifts
//! between time steps needs partition-comparison measures. Standard choices:
//! the Rand index and normalized mutual information.

/// Contingency table between two labelings over the same node set.
fn contingency(a: &[usize], b: &[usize]) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), b.len(), "labelings must cover the same nodes");
    let ka = a.iter().copied().max().map_or(0, |m| m + 1);
    let kb = b.iter().copied().max().map_or(0, |m| m + 1);
    let mut table = vec![vec![0.0f64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1.0;
    }
    let row: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col: Vec<f64> = (0..kb).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    (table, row, col)
}

/// The Rand index: fraction of node pairs on which the two partitionings
/// agree (same-same or different-different). `1.0` = identical partitions;
/// `1.0` for fewer than two nodes by convention.
///
/// # Panics
/// Panics if the labelings differ in length (an internal-logic error).
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    let n = a.len() as f64;
    if a.len() < 2 {
        return 1.0;
    }
    let (table, row, col) = contingency(a, b);
    let pairs = |x: f64| x * (x - 1.0) / 2.0;
    let sum_cells: f64 = table.iter().flatten().map(|&x| pairs(x)).sum();
    let sum_rows: f64 = row.iter().map(|&x| pairs(x)).sum();
    let sum_cols: f64 = col.iter().map(|&x| pairs(x)).sum();
    let total = pairs(n);
    // agreements = same-same pairs + different-different pairs.
    (total + 2.0 * sum_cells - sum_rows - sum_cols) / total
}

/// Normalized mutual information `NMI = 2 I(A;B) / (H(A) + H(B))`;
/// `1.0` = identical partitions, `0.0` = independent. When both labelings
/// are trivial (single partition each) NMI is `1.0` by convention.
///
/// # Panics
/// Panics if the labelings differ in length (an internal-logic error).
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (table, row, col) = contingency(a, b);
    let entropy = |margin: &[f64]| -> f64 {
        margin
            .iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| {
                let p = x / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = entropy(&row);
    let hb = entropy(&col);
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial
    }
    let mut mi = 0.0;
    for (i, r) in table.iter().enumerate() {
        for (j, &cell) in r.iter().enumerate() {
            if cell > 0.0 {
                let p = cell / n;
                mi += p * (p * n * n / (row[i] * col[j])).ln();
            }
        }
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_is_invisible() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [2, 2, 0, 0, 1, 1];
        assert!((rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disagreement_lowers_scores() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 0, 1, 1, 1, 1]; // one node moved
        let c = [0, 1, 0, 1, 0, 1]; // maximally shuffled
        assert!(rand_index(&a, &b) < 1.0);
        assert!(rand_index(&a, &b) > rand_index(&a, &c));
        assert!(nmi(&a, &b) < 1.0);
        assert!(nmi(&a, &b) > nmi(&a, &c));
    }

    #[test]
    fn hand_computed_rand_index() {
        // a = {0,1},{2}; b = {0},{1,2}: pairs (01),(02),(12):
        // a: same,diff,diff; b: diff,diff,same -> agree only on (02): 1/3.
        let a = [0, 0, 1];
        let b = [0, 1, 1];
        assert!((rand_index(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(rand_index(&[0], &[0]), 1.0);
        assert_eq!(nmi(&[], &[]), 1.0);
        // One trivial, one not: NMI 0 (no information shared).
        let a = [0, 0, 0, 0];
        let b = [0, 1, 0, 1];
        assert!(nmi(&a, &b) < 1e-12);
    }
}
