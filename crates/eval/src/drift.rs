//! Drift measures for repeated partitioning (paper §6.4).
//!
//! Both the distributed per-region refresher (`core::distributed`) and the
//! online repartitioning engine need the same two questions answered between
//! rounds: *how much did the partition structure change* (labeling drift)
//! and *how much did the congestion landscape move under a fixed partition*
//! (density drift). This module is the single shared implementation.

use crate::similarity::{nmi, rand_index};
use serde::{Deserialize, Serialize};

/// Structural drift between two labelings of the same node set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionDrift {
    /// Normalized mutual information between the labelings
    /// (1 = structure unchanged).
    pub nmi: f64,
    /// Rand index between the labelings (1 = identical pair relations).
    pub rand_index: f64,
    /// Partition count before.
    pub k_before: usize,
    /// Partition count after.
    pub k_after: usize,
}

impl PartitionDrift {
    /// Measures drift from the `before` labeling to the `after` labeling.
    ///
    /// # Panics
    /// Panics if the labelings differ in length (an internal-logic error:
    /// drift is only defined over one node set).
    pub fn between(before: &[usize], after: &[usize]) -> Self {
        assert_eq!(
            before.len(),
            after.len(),
            "drift labelings must cover the same nodes"
        );
        let count_k = |l: &[usize]| l.iter().copied().max().map_or(0, |m| m + 1);
        Self {
            nmi: nmi(before, after),
            rand_index: rand_index(before, after),
            k_before: count_k(before),
            k_after: count_k(after),
        }
    }

    /// True when the structure is at least `min_nmi`-similar — the "nothing
    /// worth reacting to" test used by epoch drift policies.
    pub fn is_stable(&self, min_nmi: f64) -> bool {
        self.nmi >= min_nmi
    }
}

/// Per-group relative density divergence under a fixed labeling: for each
/// group, `|mean(current) - mean(baseline)| / scale`, where `scale` is the
/// larger of the group's baseline mean magnitude and the network-wide
/// baseline mean magnitude (with a tiny absolute floor). Dividing by the
/// network mean instead of a per-group near-zero keeps quiet groups from
/// reporting explosive relative changes over noise.
///
/// Returns one divergence per group label `0..=max(labels)`; groups with no
/// members report `0.0`.
///
/// # Panics
/// Panics if the slice lengths disagree (an internal-logic error).
pub fn group_divergence(labels: &[usize], baseline: &[f64], current: &[f64]) -> Vec<f64> {
    assert_eq!(labels.len(), baseline.len(), "labels/baseline length");
    assert_eq!(labels.len(), current.len(), "labels/current length");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut base_sum = vec![0.0f64; k];
    let mut cur_sum = vec![0.0f64; k];
    let mut count = vec![0usize; k];
    for ((&l, &b), &c) in labels.iter().zip(baseline).zip(current) {
        base_sum[l] += b;
        cur_sum[l] += c;
        count[l] += 1;
    }
    let n = labels.len();
    let net_mean = if n == 0 {
        0.0
    } else {
        baseline.iter().sum::<f64>().abs() / n as f64
    };
    (0..k)
        .map(|g| {
            if count[g] == 0 {
                return 0.0;
            }
            let inv = 1.0 / count[g] as f64;
            let mb = base_sum[g] * inv;
            let mc = cur_sum[g] * inv;
            let scale = mb.abs().max(net_mean).max(1e-12);
            (mc - mb).abs() / scale
        })
        .collect()
}

/// The largest per-group divergence (see [`group_divergence`]); `0.0` when
/// there are no groups.
pub fn max_group_divergence(labels: &[usize], baseline: &[f64], current: &[f64]) -> f64 {
    group_divergence(labels, baseline, current)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_show_no_drift() {
        let a = [0, 0, 1, 1, 2, 2];
        let d = PartitionDrift::between(&a, &a);
        assert!((d.nmi - 1.0).abs() < 1e-12);
        assert!((d.rand_index - 1.0).abs() < 1e-12);
        assert_eq!(d.k_before, 3);
        assert_eq!(d.k_after, 3);
        assert!(d.is_stable(0.99));
    }

    #[test]
    fn structural_change_registers() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 1, 0, 1, 0, 1];
        let d = PartitionDrift::between(&a, &b);
        assert!(d.nmi < 0.2);
        assert!(!d.is_stable(0.8));
    }

    #[test]
    fn group_divergence_is_per_group_and_relative() {
        let labels = [0, 0, 1, 1];
        let baseline = [1.0, 1.0, 2.0, 2.0];
        // Group 0 unchanged, group 1 mean moves 2.0 -> 3.0 (+50%).
        let current = [1.0, 1.0, 3.0, 3.0];
        let div = group_divergence(&labels, &baseline, &current);
        assert_eq!(div.len(), 2);
        assert!(div[0].abs() < 1e-12);
        assert!((div[1] - 0.5).abs() < 1e-12);
        assert!((max_group_divergence(&labels, &baseline, &current) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quiet_groups_scale_by_network_mean() {
        // Group 0's baseline mean is 0: absolute change 0.1 is judged
        // against the network mean (0.5), not the zero group mean.
        let labels = [0, 1];
        let baseline = [0.0, 1.0];
        let current = [0.1, 1.0];
        let div = group_divergence(&labels, &baseline, &current);
        assert!((div[0] - 0.2).abs() < 1e-12, "0.1 / 0.5 network mean");
    }
}
