//! Efficient mean-absolute-difference kernels.
//!
//! All four paper metrics are built on average absolute density differences
//! between node sets. Naive all-pairs evaluation is quadratic; sorting plus
//! prefix sums brings every kernel to `O(n log n)`.

use roadpart_linalg::ord::sort_f64;

/// Mean `|x_i - x_j|` over all unordered pairs within `values`;
/// `0.0` for fewer than two values.
pub fn mean_abs_pairwise(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sort_f64(&mut sorted);
    // For sorted x: sum_{i<j} (x_j - x_i) = sum_j x_j * j - prefix_j.
    let mut prefix = 0.0;
    let mut total = 0.0;
    for (j, &x) in sorted.iter().enumerate() {
        total += x * j as f64 - prefix;
        prefix += x;
    }
    total / (n as f64 * (n - 1) as f64 / 2.0)
}

/// Mean `|x - y|` over all cross pairs `(x, y) ∈ a × b`;
/// `0.0` when either set is empty.
pub fn mean_abs_cross(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Sort b once; for each x in a, sum |x - y| over sorted b via binary
    // search + prefix sums.
    let mut sb = b.to_vec();
    sort_f64(&mut sb);
    let mut prefix = Vec::with_capacity(sb.len() + 1);
    let mut running = 0.0;
    prefix.push(0.0);
    for &y in &sb {
        running += y;
        prefix.push(running);
    }
    let total_b: f64 = running;
    let mut total = 0.0;
    for &x in a {
        let pos = sb.partition_point(|&y| y <= x);
        // y <= x contribute (x - y); y > x contribute (y - x).
        let below = x * pos as f64 - prefix[pos];
        let above = (total_b - prefix[pos]) - x * (sb.len() - pos) as f64;
        total += below + above;
    }
    total / (a.len() as f64 * b.len() as f64)
}

/// Mean absolute deviation from the mean; `0.0` for an empty slice.
pub fn mean_abs_deviation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mu = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mu).abs()).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_pairwise(values: &[f64]) -> f64 {
        let n = values.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += (values[i] - values[j]).abs();
            }
        }
        sum / (n as f64 * (n - 1) as f64 / 2.0)
    }

    fn naive_cross(a: &[f64], b: &[f64]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for &x in a {
            for &y in b {
                sum += (x - y).abs();
            }
        }
        sum / (a.len() * b.len()) as f64
    }

    #[test]
    fn pairwise_matches_naive() {
        let values: Vec<f64> = (0..50)
            .map(|i| ((i * 17) % 23) as f64 * 0.3 - 2.0)
            .collect();
        assert!((mean_abs_pairwise(&values) - naive_pairwise(&values)).abs() < 1e-10);
    }

    #[test]
    fn cross_matches_naive() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).cos() * 2.0).collect();
        assert!((mean_abs_cross(&a, &b) - naive_cross(&a, &b)).abs() < 1e-10);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean_abs_pairwise(&[]), 0.0);
        assert_eq!(mean_abs_pairwise(&[5.0]), 0.0);
        assert_eq!(mean_abs_cross(&[], &[1.0]), 0.0);
        assert_eq!(mean_abs_deviation(&[]), 0.0);
    }

    #[test]
    fn simple_hand_computed() {
        // pairs: |1-3| = 2, |1-5| = 4, |3-5| = 2 -> mean 8/3.
        assert!((mean_abs_pairwise(&[1.0, 3.0, 5.0]) - 8.0 / 3.0).abs() < 1e-12);
        // cross {0} x {1, 3}: (1 + 3)/2 = 2.
        assert!((mean_abs_cross(&[0.0], &[1.0, 3.0]) - 2.0).abs() < 1e-12);
        // MAD of {0, 4}: mean 2, deviations 2, 2 -> 2.
        assert!((mean_abs_deviation(&[0.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identical_values_zero_distance() {
        assert_eq!(mean_abs_pairwise(&[2.0; 10]), 0.0);
        assert_eq!(mean_abs_cross(&[2.0; 5], &[2.0; 7]), 0.0);
    }
}
