//! The graph Davies–Bouldin index (GDBI, paper §6.2 footnote 5).
//!
//! Davies–Bouldin restricted to *spatially adjacent* partitions:
//! `GDBI(P) = (1/k) Σ_i max_{j ∈ neigh(i)} (S(P_i) + S(P_j)) / S(P_i, P_j)`
//! with `S(P_i)` the mean absolute deviation of densities from the
//! partition mean and `S(P_i, P_j) = |μ_i − μ_j|`. **Lower is better.**

use crate::adjacency::PartitionAdjacency;
use crate::distances::mean_abs_deviation;

/// Floor on the centroid separation, preventing division blow-ups when two
/// adjacent partitions share a mean (a maximally bad configuration — the
/// ratio is capped rather than infinite).
const MIN_SEPARATION: f64 = 1e-12;

/// Computes GDBI. Partitions without neighbors contribute zero; an empty
/// partition set scores zero.
pub fn gdbi(groups: &[Vec<f64>], adjacency: &PartitionAdjacency) -> f64 {
    let k = groups.len();
    if k == 0 {
        return 0.0;
    }
    let means: Vec<f64> = groups
        .iter()
        .map(|g| {
            if g.is_empty() {
                0.0
            } else {
                g.iter().sum::<f64>() / g.len() as f64
            }
        })
        .collect();
    let scatters: Vec<f64> = groups.iter().map(|g| mean_abs_deviation(g)).collect();
    let mut total = 0.0;
    for i in 0..k {
        let worst = adjacency.neighbors[i]
            .iter()
            .map(|&j| {
                let sep = (means[i] - means[j]).abs().max(MIN_SEPARATION);
                (scatters[i] + scatters[j]) / sep
            })
            .fold(0.0f64, f64::max);
        total += worst;
    }
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::partition_adjacency;
    use crate::inter_intra::grouped_features;
    use roadpart_linalg::CsrMatrix;

    fn path6() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn clean_split_beats_mixed_split() {
        let features = [1.0, 1.1, 0.9, 5.0, 5.1, 4.9];
        let adj = path6();
        let clean_labels = [0, 0, 0, 1, 1, 1];
        let mixed_labels = [0, 1, 0, 1, 0, 1];
        let clean = gdbi(
            &grouped_features(&features, &clean_labels, 2),
            &partition_adjacency(&adj, &clean_labels, 2),
        );
        let mixed = gdbi(
            &grouped_features(&features, &mixed_labels, 2),
            &partition_adjacency(&adj, &mixed_labels, 2),
        );
        assert!(
            clean < mixed,
            "clean {clean} should beat (be lower than) mixed {mixed}"
        );
        assert!(clean < 0.1);
    }

    #[test]
    fn coincident_means_capped_not_infinite() {
        // Both partitions have mean 2 but non-zero scatter.
        let features = [1.0, 3.0, 2.0, 3.0, 1.0, 2.0];
        let labels = [0, 0, 0, 1, 1, 1];
        let g = gdbi(
            &grouped_features(&features, &labels, 2),
            &partition_adjacency(&path6(), &labels, 2),
        );
        assert!(g.is_finite());
        assert!(g > 1e6, "coincident means must score terribly: {g}");
    }

    #[test]
    fn isolated_partition_contributes_zero() {
        let adj = CsrMatrix::from_undirected_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let labels = [0, 0, 1, 1];
        let features = [1.0, 2.0, 5.0, 6.0];
        let g = gdbi(
            &grouped_features(&features, &labels, 2),
            &partition_adjacency(&adj, &labels, 2),
        );
        assert_eq!(g, 0.0);
    }

    #[test]
    fn empty_partition_set() {
        let pa = PartitionAdjacency {
            pairs: vec![],
            neighbors: vec![],
        };
        assert_eq!(gdbi(&[], &pa), 0.0);
    }
}
