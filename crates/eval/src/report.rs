//! One-call quality report bundling every paper metric.

use crate::adjacency::partition_adjacency;
use crate::ans::ans;
use crate::cut_metrics::{alpha_cut_value, ncut_value};
use crate::gdbi::gdbi;
use crate::inter_intra::{grouped_features, inter_metric, intra_metric};
use crate::modularity::modularity;
use roadpart_linalg::CsrMatrix;
use serde::{Deserialize, Serialize};

/// All partition-quality metrics for one partitioning — a row of Figure 4
/// or Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityReport {
    /// Number of partitions.
    pub k: usize,
    /// Inter-partition heterogeneity (higher better).
    pub inter: f64,
    /// Intra-partition homogeneity (lower better).
    pub intra: f64,
    /// Graph Davies–Bouldin index (lower better).
    pub gdbi: f64,
    /// Average NcutSilhouette (lower better).
    pub ans: f64,
    /// α-Cut objective value, Eq. 5 (lower better).
    pub alpha_cut: f64,
    /// Normalized-cut value (lower better).
    pub ncut: f64,
    /// Newman modularity (higher better).
    pub modularity: f64,
}

impl QualityReport {
    /// Evaluates a partitioning of a graph whose nodes carry `features`
    /// (traffic densities). `adj` supplies both the spatial adjacency
    /// pattern (for `inter`/`gdbi`/`ans` neighborhoods) and the weights
    /// (for the cut objectives) — pass the affinity-weighted graph the cut
    /// optimized, or the binary adjacency for purely spatial evaluation.
    ///
    /// # Panics
    /// Panics when `labels`/`features` length disagrees with the graph
    /// order (internal-logic error, not data).
    pub fn compute(adj: &CsrMatrix, features: &[f64], labels: &[usize]) -> Self {
        assert_eq!(labels.len(), adj.dim(), "label/graph size mismatch");
        assert_eq!(features.len(), adj.dim(), "feature/graph size mismatch");
        let k = labels.iter().copied().max().map_or(0, |m| m + 1);
        let pa = partition_adjacency(adj, labels, k);
        let groups = grouped_features(features, labels, k);
        Self {
            k,
            inter: inter_metric(&groups, &pa),
            intra: intra_metric(&groups),
            gdbi: gdbi(&groups, &pa),
            ans: ans(&groups, &pa),
            alpha_cut: alpha_cut_value(adj, labels, k),
            ncut: ncut_value(adj, labels, k),
            modularity: modularity(adj, labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_report_orders_good_above_bad() {
        let adj = CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
            ],
        )
        .unwrap();
        let features = [1.0, 1.1, 0.9, 5.0, 5.1, 4.9];
        let good = QualityReport::compute(&adj, &features, &[0, 0, 0, 1, 1, 1]);
        let bad = QualityReport::compute(&adj, &features, &[0, 1, 1, 0, 0, 1]);
        assert_eq!(good.k, 2);
        assert!(good.intra < bad.intra);
        assert!(good.gdbi < bad.gdbi);
        assert!(good.ans < bad.ans);
        assert!(good.ncut < bad.ncut);
        assert!(good.modularity > bad.modularity);
    }

    #[test]
    fn serializes() {
        let adj = CsrMatrix::from_undirected_edges(2, &[(0, 1, 1.0)]).unwrap();
        let r = QualityReport::compute(&adj, &[0.1, 0.2], &[0, 1]);
        // serde round-trip through the derived impls.
        let as_debug = format!("{r:?}");
        assert!(as_debug.contains("QualityReport"));
    }
}
