//! # roadpart-eval
//!
//! Partition-quality metrics for congestion-based road-network partitioning
//! (paper §6.2), all built on average absolute density differences:
//!
//! * [`inter_intra`] — the `inter` (C.3, heterogeneity; higher better) and
//!   `intra` (C.4, homogeneity; lower better) metrics;
//! * [`mod@gdbi`] — the graph Davies–Bouldin index (adjacency-restricted DBI;
//!   lower better);
//! * [`mod@ans`] — the average NcutSilhouette of Ji & Geroliminis \[5\] (lower
//!   better; its minimum over k selects the optimal partition count);
//! * [`cut_metrics`] — cut/association sums, the α-Cut objective (Eq. 5)
//!   and the normalized-cut value;
//! * [`mod@modularity`] — Newman modularity, used to verify the paper's
//!   α-Cut ≙ −modularity equivalence claim;
//! * [`similarity`] — Rand index and normalized mutual information for
//!   tracking partition drift across time steps;
//! * [`drift`] — shared structural/density drift measures built on
//!   [`similarity`], used by both the distributed refresher and the online
//!   repartitioning engine;
//! * [`report::QualityReport`] — everything in one call.

pub mod adjacency;
pub mod ans;
pub mod cut_metrics;
pub mod distances;
pub mod drift;
pub mod gdbi;
pub mod inter_intra;
pub mod modularity;
pub mod report;
pub mod similarity;

pub use adjacency::{partition_adjacency, PartitionAdjacency};
pub use ans::ans;
pub use cut_metrics::{
    alpha_cut_value, ncut_value, partition_cost, partition_volume, PartitionWeights,
};
pub use drift::{group_divergence, max_group_divergence, PartitionDrift};
pub use gdbi::gdbi;
pub use inter_intra::{inter_metric, intra_metric};
pub use modularity::modularity;
pub use report::QualityReport;
pub use similarity::{nmi, rand_index};
