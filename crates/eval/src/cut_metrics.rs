//! Graph-cut objective values (Definitions 3–4, 10–11 and Eq. 5).
//!
//! These evaluate a partitioning against the *weighted* graph the cut
//! optimized: cut/association sums, the α-Cut objective with the paper's
//! data-driven `α_i = W(P_i, V)/W(V, V)`, and the normalized-cut value.

use roadpart_linalg::CsrMatrix;

/// Per-partition weight sums extracted in one pass over the matrix.
#[derive(Debug, Clone)]
pub struct PartitionWeights {
    /// `W(P_i, P_i)` — internal association (both link directions counted,
    /// i.e. 2× the undirected internal weight, matching `Σ_{p,q} A(p,q)`).
    pub association: Vec<f64>,
    /// `W(P_i, ~P_i)` — cut to all other partitions.
    pub cut: Vec<f64>,
    /// Partition sizes `|P_i|`.
    pub sizes: Vec<usize>,
    /// `W(V, V)` — total weight `1ᵀ A 1`.
    pub total: f64,
}

impl PartitionWeights {
    /// Computes all sums for `labels` (dense in `0..k`).
    ///
    /// # Panics
    /// Panics if `labels.len() != adj.dim()` (internal-logic error).
    pub fn compute(adj: &CsrMatrix, labels: &[usize], k: usize) -> Self {
        assert_eq!(labels.len(), adj.dim(), "label/graph size mismatch");
        let mut association = vec![0.0; k];
        let mut cut = vec![0.0; k];
        let mut sizes = vec![0usize; k];
        for &l in labels {
            sizes[l] += 1;
        }
        let mut total = 0.0;
        for (u, v, w) in adj.iter() {
            total += w;
            if labels[u] == labels[v] {
                association[labels[u]] += w;
            } else {
                cut[labels[u]] += w;
            }
        }
        Self {
            association,
            cut,
            sizes,
            total,
        }
    }

    /// `W(P_i, V) = W(P_i, P_i) + W(P_i, ~P_i)`.
    pub fn volume(&self, i: usize) -> f64 {
        self.association[i] + self.cut[i]
    }

    /// The paper's data-driven balance factor `α_i = W(P_i, V)/W(V, V)`.
    pub fn alpha(&self, i: usize) -> f64 {
        if self.total > 0.0 {
            self.volume(i) / self.total
        } else {
            0.0
        }
    }
}

/// The α-Cut objective (Eq. 5) with the data-driven `α` vector:
/// `Σ_i ( α_i W(P_i,~P_i)/|P_i| − (1−α_i) W(P_i,P_i)/|P_i| )`.
/// **Lower is better** (it is negative for good partitionings).
pub fn alpha_cut_value(adj: &CsrMatrix, labels: &[usize], k: usize) -> f64 {
    let w = PartitionWeights::compute(adj, labels, k);
    (0..k)
        .filter(|&i| w.sizes[i] > 0)
        .map(|i| {
            let a = w.alpha(i);
            let n = w.sizes[i] as f64;
            a * w.cut[i] / n - (1.0 - a) * w.association[i] / n
        })
        .sum()
}

/// The normalized-cut value `Σ_i W(P_i, ~P_i) / W(P_i, V)`;
/// partitions with zero volume contribute zero. **Lower is better.**
pub fn ncut_value(adj: &CsrMatrix, labels: &[usize], k: usize) -> f64 {
    let w = PartitionWeights::compute(adj, labels, k);
    (0..k)
        .map(|i| {
            let vol = w.volume(i);
            if vol > 0.0 {
                w.cut[i] / vol
            } else {
                0.0
            }
        })
        .sum()
}

/// Total cost of partitioning (Definition 3): sum of affinities across
/// partition boundaries, counting each unordered pair once.
pub fn partition_cost(adj: &CsrMatrix, labels: &[usize], k: usize) -> f64 {
    let w = PartitionWeights::compute(adj, labels, k);
    w.cut.iter().sum::<f64>() / 2.0
}

/// Total partition volume (Definition 4): sum of within-partition
/// affinities, counting each unordered pair once.
pub fn partition_volume(adj: &CsrMatrix, labels: &[usize], k: usize) -> f64 {
    let w = PartitionWeights::compute(adj, labels, k);
    w.association.iter().sum::<f64>() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles bridged by one 0.5 link.
    fn graph() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.5),
            ],
        )
        .unwrap()
    }

    const GOOD: [usize; 6] = [0, 0, 0, 1, 1, 1];
    const BAD: [usize; 6] = [0, 1, 0, 1, 0, 1];

    #[test]
    fn weights_hand_computed() {
        let w = PartitionWeights::compute(&graph(), &GOOD, 2);
        // Each triangle: 3 undirected unit links -> association 6 per side.
        assert_eq!(w.association, vec![6.0, 6.0]);
        // Bridge 0.5 counted from each side once.
        assert_eq!(w.cut, vec![0.5, 0.5]);
        assert_eq!(w.sizes, vec![3, 3]);
        assert!((w.total - 13.0).abs() < 1e-12); // 2*(6*1 + 0.5)
        assert!((w.volume(0) - 6.5).abs() < 1e-12);
        assert!((w.alpha(0) - 6.5 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn objectives_prefer_the_planted_cut() {
        let g = graph();
        assert!(alpha_cut_value(&g, &GOOD, 2) < alpha_cut_value(&g, &BAD, 2));
        assert!(ncut_value(&g, &GOOD, 2) < ncut_value(&g, &BAD, 2));
    }

    #[test]
    fn cost_and_volume_partition_total() {
        let g = graph();
        let cost = partition_cost(&g, &GOOD, 2);
        let vol = partition_volume(&g, &GOOD, 2);
        assert!((cost - 0.5).abs() < 1e-12);
        assert!((vol - 6.0).abs() < 1e-12);
        // cost + volume = total undirected weight.
        assert!((cost + vol - g.total() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_partition_edge_cases() {
        let g = graph();
        let labels = [0usize; 6];
        assert_eq!(partition_cost(&g, &labels, 1), 0.0);
        assert_eq!(ncut_value(&g, &labels, 1), 0.0);
        // With one partition alpha_1 = 1, so both terms vanish: the trivial
        // partitioning is never "better" than a genuine balanced cut.
        assert_eq!(alpha_cut_value(&g, &labels, 1), 0.0);
        assert!(alpha_cut_value(&g, &GOOD, 2) < 0.0);
    }

    #[test]
    fn edgeless_graph_all_zero() {
        let g = CsrMatrix::from_triplets(3, &[]).unwrap();
        let labels = [0, 1, 2];
        assert_eq!(alpha_cut_value(&g, &labels, 3), 0.0);
        assert_eq!(ncut_value(&g, &labels, 3), 0.0);
    }
}
