//! Partition-level spatial adjacency.

use roadpart_linalg::CsrMatrix;
use std::collections::BTreeSet;

/// The set of unordered partition pairs `(i, j)`, `i < j`, connected by at
/// least one graph link, plus per-partition neighbor lists.
#[derive(Debug, Clone)]
pub struct PartitionAdjacency {
    /// Unordered adjacent pairs, each with `i < j`.
    pub pairs: Vec<(usize, usize)>,
    /// Neighboring partitions per partition.
    pub neighbors: Vec<Vec<usize>>,
}

/// Computes which partitions are spatially adjacent under `labels`
/// (`labels[v]` = partition of node `v`, dense in `0..k`).
pub fn partition_adjacency(adj: &CsrMatrix, labels: &[usize], k: usize) -> PartitionAdjacency {
    let mut set: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (u, v, _) in adj.iter() {
        let (a, b) = (labels[u], labels[v]);
        if a != b {
            set.insert((a.min(b), a.max(b)));
        }
    }
    let mut pairs: Vec<(usize, usize)> = set.into_iter().collect();
    pairs.sort_unstable();
    let mut neighbors = vec![Vec::new(); k];
    for &(a, b) in &pairs {
        neighbors[a].push(b);
        neighbors[b].push(a);
    }
    PartitionAdjacency { pairs, neighbors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_partitions_adjacent_in_order() {
        // Path 0-1-2-3 with labels [0,0,1,2]: pairs (0,1), (1,2).
        let adj =
            CsrMatrix::from_undirected_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let pa = partition_adjacency(&adj, &[0, 0, 1, 2], 3);
        assert_eq!(pa.pairs, vec![(0, 1), (1, 2)]);
        assert_eq!(pa.neighbors[0], vec![1]);
        assert_eq!(pa.neighbors[1], vec![0, 2]);
    }

    #[test]
    fn no_cross_links_no_pairs() {
        let adj = CsrMatrix::from_undirected_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let pa = partition_adjacency(&adj, &[0, 0, 1, 1], 2);
        assert!(pa.pairs.is_empty());
        assert!(pa.neighbors[0].is_empty());
    }
}
