//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;
use roadpart_eval::{
    distances::{mean_abs_cross, mean_abs_pairwise},
    nmi, partition_cost, partition_volume, rand_index, QualityReport,
};
use roadpart_linalg::CsrMatrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast distance kernels agree with naive quadratic evaluation.
    #[test]
    fn distance_kernels_match_naive(
        a in proptest::collection::vec(-10.0f64..10.0, 0..40),
        b in proptest::collection::vec(-10.0f64..10.0, 0..40),
    ) {
        let naive_pair = {
            let n = a.len();
            if n < 2 { 0.0 } else {
                let mut s = 0.0;
                for i in 0..n { for j in (i + 1)..n { s += (a[i] - a[j]).abs(); } }
                s / (n as f64 * (n - 1) as f64 / 2.0)
            }
        };
        prop_assert!((mean_abs_pairwise(&a) - naive_pair).abs() < 1e-9);
        let naive_cross = if a.is_empty() || b.is_empty() { 0.0 } else {
            let mut s = 0.0;
            for &x in &a { for &y in &b { s += (x - y).abs(); } }
            s / (a.len() * b.len()) as f64
        };
        prop_assert!((mean_abs_cross(&a, &b) - naive_cross).abs() < 1e-9);
    }

    /// Partition-similarity measures: bounds, identity, and label-permutation
    /// invariance.
    #[test]
    fn similarity_invariants(labels in proptest::collection::vec(0usize..4, 2..40), shift in 1usize..4) {
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + shift) % 4).collect();
        prop_assert!((rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        prop_assert!((nmi(&labels, &labels) - 1.0).abs() < 1e-12);
        prop_assert!((rand_index(&labels, &permuted) - 1.0).abs() < 1e-12);
        prop_assert!((nmi(&labels, &permuted) - 1.0).abs() < 1e-12);
        // Bounds against an arbitrary second labeling.
        let other: Vec<usize> = labels.iter().rev().copied().collect();
        let ri = rand_index(&labels, &other);
        let mi = nmi(&labels, &other);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ri));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&mi));
        // Symmetry.
        prop_assert!((ri - rand_index(&other, &labels)).abs() < 1e-12);
        prop_assert!((mi - nmi(&other, &labels)).abs() < 1e-12);
    }

    /// Cost + volume = total weight (Definitions 3-4) on arbitrary graphs,
    /// and the full report stays finite.
    #[test]
    fn report_consistency(
        n in 3usize..20,
        chords in proptest::collection::vec((0usize..20, 0usize..20, 0.1f64..2.0), 0..25),
        seed in proptest::collection::vec(0usize..3, 20),
        feats in proptest::collection::vec(0.0f64..1.0, 20),
    ) {
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        for &(a, b, w) in &chords {
            if a < n && b < n && a != b {
                edges.push((a, b, w));
            }
        }
        let adj = CsrMatrix::from_undirected_edges(n, &edges).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| seed[i]).collect();
        let dense = roadpart_cut::Partition::from_labels(&labels);
        let k = dense.k();
        let cost = partition_cost(&adj, dense.labels(), k);
        let volume = partition_volume(&adj, dense.labels(), k);
        let total = adj.total() / 2.0;
        prop_assert!((cost + volume - total).abs() < 1e-9 * total.max(1.0));
        let rep = QualityReport::compute(&adj, &feats[..n], dense.labels());
        prop_assert!(rep.inter.is_finite() && rep.inter >= 0.0);
        prop_assert!(rep.intra.is_finite() && rep.intra >= 0.0);
        prop_assert!(rep.ans.is_finite() && rep.ans >= 0.0);
        prop_assert!(rep.gdbi.is_finite() && rep.gdbi >= 0.0);
        prop_assert!(rep.modularity.is_finite());
    }
}
